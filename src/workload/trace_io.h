// CSV import/export for catalogs and arrival traces.
//
// Lets users replay their own production traces through the schemes and
// the simulator, and lets generated workloads be inspected or post-
// processed outside the library. Formats:
//
//   catalog:  file_id,size_bytes,request_rate      (ids must be dense 0..n-1)
//   arrivals: time_seconds,file_id                 (times non-decreasing)
//
// Loaders validate eagerly and throw std::runtime_error with a line number
// on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/arrivals.h"
#include "workload/file_catalog.h"

namespace spcache {

void save_catalog_csv(const Catalog& catalog, std::ostream& os);
Catalog load_catalog_csv(std::istream& is);

void save_arrivals_csv(const std::vector<Arrival>& arrivals, std::ostream& os);
std::vector<Arrival> load_arrivals_csv(std::istream& is);

// File-path conveniences; throw std::runtime_error if the file cannot be
// opened.
void save_catalog_csv_file(const Catalog& catalog, const std::string& path);
Catalog load_catalog_csv_file(const std::string& path);
void save_arrivals_csv_file(const std::vector<Arrival>& arrivals, const std::string& path);
std::vector<Arrival> load_arrivals_csv_file(const std::string& path);

}  // namespace spcache
