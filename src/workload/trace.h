// Synthetic Yahoo!-like trace generator (Fig. 1 reproduction).
//
// The paper characterizes the Yahoo! webscope trace (40M files, two months)
// by three marginals:
//   * ~78% of files are cold (< 10 accesses),
//   * ~2%  of files are hot (>= 100 accesses),
//   * hot files are 15-30x larger than cold ones.
//
// We cannot redistribute the trace, so `YahooTraceModel` generates a
// synthetic population matching those marginals directly: the access-count
// distribution is a three-segment mixture — cold [1, cold_threshold),
// warm [cold_threshold, hot_threshold), hot [hot_threshold, max] — with the
// segment masses set to the paper's fractions; within the cold/warm
// segments counts are log-uniform (a local power law), and the hot tail is
// Pareto. Sizes follow the same lognormal-with-hot-multiplier model as
// make_yahoo_catalog.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace spcache {

struct TraceFileRecord {
  std::uint64_t access_count = 0;
  Bytes size = 0;
};

struct YahooTraceModel {
  // Segment masses (must sum to <= 1; the warm segment absorbs the rest).
  double cold_fraction = 0.78;  // accesses in [1, cold_threshold)
  double hot_fraction = 0.02;   // accesses >= hot_threshold
  std::uint64_t cold_count_threshold = 10;
  std::uint64_t hot_count_threshold = 100;
  double hot_tail_shape = 1.1;  // Pareto shape of the hot tail
  std::uint64_t max_count = 1'000'000;

  Bytes cold_mean_size = 8 * kMB;
  double size_sigma = 0.7;
  double hot_size_mult_lo = 15.0;
  double hot_size_mult_hi = 30.0;
};

// Generate `n` file records (unordered population).
std::vector<TraceFileRecord> generate_yahoo_trace(std::size_t n, const YahooTraceModel& model,
                                                  Rng& rng);

// Summary marginals of a trace population; used by tests and the Fig. 1
// bench to check the generator against the paper's numbers.
struct TraceSummary {
  double cold_fraction = 0.0;     // access_count < cold threshold
  double hot_fraction = 0.0;      // access_count >= hot threshold
  double hot_to_cold_size_ratio = 0.0;
  double mean_access_count = 0.0;
};

TraceSummary summarize_trace(const std::vector<TraceFileRecord>& records,
                             const YahooTraceModel& model);

}  // namespace spcache
