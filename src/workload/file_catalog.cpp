#include "workload/file_catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workload/zipf.h"

namespace spcache {

Catalog::Catalog(std::vector<FileInfo> files) : files_(std::move(files)) {
  total_rate_ = 0.0;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    files_[i].id = static_cast<FileId>(i);
    assert(files_[i].request_rate >= 0.0);
    total_rate_ += files_[i].request_rate;
  }
}

double Catalog::popularity(FileId i) const {
  if (total_rate_ <= 0.0) return 0.0;
  return files_[i].request_rate / total_rate_;
}

double Catalog::max_load() const {
  double mx = 0.0;
  for (const auto& f : files_) {
    mx = std::max(mx, static_cast<double>(f.size) * (total_rate_ > 0 ? f.request_rate / total_rate_ : 0.0));
  }
  return mx;
}

Bytes Catalog::total_bytes() const {
  Bytes total = 0;
  for (const auto& f : files_) total += f.size;
  return total;
}

void Catalog::set_total_rate(double new_total) {
  assert(new_total >= 0.0);
  if (total_rate_ <= 0.0) return;
  const double scale = new_total / total_rate_;
  for (auto& f : files_) f.request_rate *= scale;
  total_rate_ = new_total;
  cdf_valid_ = false;
}

void Catalog::shuffle_popularities(Rng& rng) {
  std::vector<double> rates;
  rates.reserve(files_.size());
  for (const auto& f : files_) rates.push_back(f.request_rate);
  rng.shuffle(rates);
  for (std::size_t i = 0; i < files_.size(); ++i) files_[i].request_rate = rates[i];
  cdf_valid_ = false;
}

FileId Catalog::sample_file(Rng& rng) const {
  assert(!files_.empty() && total_rate_ > 0.0);
  rebuild_cache();
  return static_cast<FileId>(rng.sample_cumulative(rate_cdf_));
}

void Catalog::rebuild_cache() const {
  if (cdf_valid_) return;
  rate_cdf_.resize(files_.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    cum += files_[i].request_rate;
    rate_cdf_[i] = cum;
  }
  cdf_valid_ = true;
}

Catalog make_uniform_catalog(std::size_t n_files, Bytes file_size, double zipf_exponent,
                             double total_rate) {
  assert(n_files > 0);
  ZipfDistribution zipf(n_files, zipf_exponent);
  std::vector<FileInfo> files(n_files);
  for (std::size_t i = 0; i < n_files; ++i) {
    files[i].size = file_size;
    files[i].request_rate = total_rate * zipf.pmf(i);
  }
  return Catalog(std::move(files));
}

Catalog make_yahoo_catalog(std::size_t n_files, double zipf_exponent, double total_rate,
                           const YahooSizeModel& model, Rng& rng) {
  assert(n_files > 0);
  ZipfDistribution zipf(n_files, zipf_exponent);
  std::vector<FileInfo> files(n_files);
  const auto hot_cutoff = static_cast<std::size_t>(model.hot_fraction * static_cast<double>(n_files));
  const auto warm_cutoff = static_cast<std::size_t>(
      (model.hot_fraction + model.warm_fraction) * static_cast<double>(n_files));
  // Lognormal with mean cold_mean_size: mean = exp(mu + sigma^2/2).
  const double mu =
      std::log(static_cast<double>(model.cold_mean_size)) - 0.5 * model.lognormal_sigma * model.lognormal_sigma;
  for (std::size_t i = 0; i < n_files; ++i) {
    double mult = 1.0;
    if (i < hot_cutoff) {
      mult = rng.uniform(model.hot_mult_lo, model.hot_mult_hi);
    } else if (i < warm_cutoff) {
      // Smooth ramp from warm_mult down to 1 across the warm band.
      const double t = static_cast<double>(i - hot_cutoff) /
                       std::max<double>(1.0, static_cast<double>(warm_cutoff - hot_cutoff));
      mult = model.warm_mult * (1.0 - t) + 1.0 * t;
    }
    const double raw = rng.lognormal(mu, model.lognormal_sigma) * mult;
    files[i].size = std::max<Bytes>(static_cast<Bytes>(raw), 64 * kKB);
    files[i].request_rate = total_rate * zipf.pmf(i);
  }
  return Catalog(std::move(files));
}

}  // namespace spcache
