#include "workload/trace_io.h"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spcache {

namespace {

[[noreturn]] void malformed(const char* what, std::size_t line) {
  std::ostringstream os;
  os << "trace_io: " << what << " at line " << line;
  throw std::runtime_error(os.str());
}

// Split a CSV line into exactly `n` fields; no quoting (the formats are
// purely numeric).
std::vector<std::string> fields(const std::string& line, std::size_t n, std::size_t line_no) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto comma = line.find(',', start);
    out.push_back(line.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.size() != n) malformed("wrong field count", line_no);
  return out;
}

double parse_double(const std::string& s, std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) malformed("trailing characters in number", line_no);
    return v;
  } catch (const std::invalid_argument&) {
    malformed("not a number", line_no);
  } catch (const std::out_of_range&) {
    malformed("number out of range", line_no);
  }
}

std::uint64_t parse_u64(const std::string& s, std::size_t line_no) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) malformed("not an integer", line_no);
  return v;
}

}  // namespace

void save_catalog_csv(const Catalog& catalog, std::ostream& os) {
  os << "file_id,size_bytes,request_rate\n";
  os << std::setprecision(17);
  for (const auto& f : catalog.files()) {
    os << f.id << ',' << f.size << ',' << f.request_rate << '\n';
  }
}

Catalog load_catalog_csv(std::istream& is) {
  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(is, line) || line.rfind("file_id,", 0) != 0) {
    malformed("missing catalog header", line_no);
  }
  std::vector<FileInfo> infos;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = fields(line, 3, line_no);
    const auto id = parse_u64(f[0], line_no);
    if (id != infos.size()) malformed("file ids must be dense and ordered", line_no);
    FileInfo info;
    info.size = parse_u64(f[1], line_no);
    info.request_rate = parse_double(f[2], line_no);
    if (info.request_rate < 0.0) malformed("negative request rate", line_no);
    infos.push_back(info);
  }
  return Catalog(std::move(infos));
}

void save_arrivals_csv(const std::vector<Arrival>& arrivals, std::ostream& os) {
  os << "time_seconds,file_id\n";
  os << std::setprecision(17);
  for (const auto& a : arrivals) os << a.time << ',' << a.file << '\n';
}

std::vector<Arrival> load_arrivals_csv(std::istream& is) {
  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(is, line) || line.rfind("time_seconds,", 0) != 0) {
    malformed("missing arrivals header", line_no);
  }
  std::vector<Arrival> out;
  double prev = -1.0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = fields(line, 2, line_no);
    Arrival a;
    a.time = parse_double(f[0], line_no);
    a.file = static_cast<FileId>(parse_u64(f[1], line_no));
    if (a.time < prev) malformed("arrival times must be non-decreasing", line_no);
    prev = a.time;
    out.push_back(a);
  }
  return out;
}

namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace_io: cannot open " + path);
  return is;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace_io: cannot open " + path);
  return os;
}

}  // namespace

void save_catalog_csv_file(const Catalog& catalog, const std::string& path) {
  auto os = open_out(path);
  save_catalog_csv(catalog, os);
}

Catalog load_catalog_csv_file(const std::string& path) {
  auto is = open_in(path);
  return load_catalog_csv(is);
}

void save_arrivals_csv_file(const std::vector<Arrival>& arrivals, const std::string& path) {
  auto os = open_out(path);
  save_arrivals_csv(arrivals, os);
}

std::vector<Arrival> load_arrivals_csv_file(const std::string& path) {
  auto is = open_in(path);
  return load_arrivals_csv(is);
}

}  // namespace spcache
