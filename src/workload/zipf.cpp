#include "workload/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spcache {

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) : exponent_(exponent) {
  assert(n >= 1);
  assert(exponent >= 0.0);
  pmf_.resize(n);
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] = std::pow(static_cast<double>(i + 1), -exponent);
    norm += pmf_[i];
  }
  cdf_.resize(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] /= norm;
    cum += pmf_[i];
    cdf_[i] = cum;
  }
  cdf_.back() = 1.0;  // guard against fp drift
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::head_mass(std::size_t k) const {
  k = std::min(k, pmf_.size());
  double s = 0.0;
  for (std::size_t i = 0; i < k; ++i) s += pmf_[i];
  return s;
}

}  // namespace spcache
