#include "workload/arrivals.h"

#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace spcache {

std::vector<Arrival> generate_poisson_arrivals(const Catalog& catalog, std::size_t n_requests,
                                               Rng& rng) {
  assert(catalog.total_rate() > 0.0);
  std::vector<Arrival> out;
  out.reserve(n_requests);
  Seconds t = 0.0;
  const double mean_gap = 1.0 / catalog.total_rate();
  for (std::size_t i = 0; i < n_requests; ++i) {
    t += rng.exponential(mean_gap);
    out.push_back(Arrival{t, catalog.sample_file(rng)});
  }
  return out;
}

double MmppParams::average_rate() const {
  const double w_calm = mean_calm_time / (mean_calm_time + mean_burst_time);
  return w_calm * calm_rate + (1.0 - w_calm) * burst_rate;
}

std::vector<Arrival> generate_mmpp_arrivals(const Catalog& catalog, const MmppParams& params,
                                            std::size_t n_requests, Rng& rng) {
  assert(params.calm_rate > 0.0 && params.burst_rate > 0.0);
  assert(params.mean_calm_time > 0.0 && params.mean_burst_time > 0.0);
  std::vector<Arrival> out;
  out.reserve(n_requests);
  Seconds t = 0.0;
  bool bursting = false;
  Seconds state_end = rng.exponential(params.mean_calm_time);
  while (out.size() < n_requests) {
    const double rate = bursting ? params.burst_rate : params.calm_rate;
    const Seconds next = t + rng.exponential(1.0 / rate);
    if (next > state_end) {
      // State switch before the next arrival would land: advance to the
      // switch point and resample from the new state's rate (memorylessness
      // makes discarding the tentative arrival exact).
      t = state_end;
      bursting = !bursting;
      state_end = t + rng.exponential(bursting ? params.mean_burst_time : params.mean_calm_time);
      continue;
    }
    t = next;
    out.push_back(Arrival{t, catalog.sample_file(rng)});
  }
  return out;
}

double index_of_dispersion(const std::vector<Arrival>& arrivals, Seconds window) {
  assert(window > 0.0);
  if (arrivals.empty()) return 0.0;
  const Seconds horizon = arrivals.back().time;
  const auto n_windows = static_cast<std::size_t>(horizon / window);
  if (n_windows < 2) return 0.0;
  std::vector<double> counts(n_windows, 0.0);
  for (const auto& a : arrivals) {
    const auto w = static_cast<std::size_t>(a.time / window);
    if (w < n_windows) counts[w] += 1.0;
  }
  RunningStats stats;
  for (double c : counts) stats.add(c);
  return stats.mean() == 0.0 ? 0.0 : stats.variance() / stats.mean();
}

}  // namespace spcache
