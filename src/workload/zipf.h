// Zipf popularity distributions.
//
// The paper configures skewed file popularity as Zipf with exponent 1.05
// (EC2 experiments, Section 7.1) or 1.1 (motivation experiments Section 2.2
// and the trace-driven simulation Section 7.7). File i (1-indexed rank) has
// probability
//
//   p_i = i^{-s} / H_{n,s},   H_{n,s} = sum_{j=1..n} j^{-s}.
//
// `ZipfDistribution` precomputes the normalized pmf and a cumulative table
// for O(log n) sampling.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace spcache {

class ZipfDistribution {
 public:
  // n >= 1 ranks, exponent s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double exponent);

  std::size_t size() const { return pmf_.size(); }
  double exponent() const { return exponent_; }

  // Probability of rank r (0-indexed: rank 0 is the most popular item).
  double pmf(std::size_t rank) const { return pmf_[rank]; }
  const std::vector<double>& probabilities() const { return pmf_; }

  // Sample a 0-indexed rank.
  std::size_t sample(Rng& rng) const;

  // Sum of the top-k probabilities (mass concentration diagnostic).
  double head_mass(std::size_t k) const;

 private:
  double exponent_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace spcache
