// File catalogs: the set of cached files with sizes and request rates.
//
// Every caching scheme, the analytic model, the simulator, and the threaded
// cluster all consume a `Catalog`. The paper's key quantities map directly:
//
//   lambda_i  = files[i].request_rate           (requests/second)
//   P_i       = popularity(i) = lambda_i / sum_j lambda_j     (Eq. 4)
//   L_i       = load(i) = S_i * P_i              (expected load, Eq. 1 input)
//
// Builders reproduce the paper's workloads:
//   * make_uniform_catalog  - n equal-size files, Zipf(s) popularity
//     (Sections 2.2, 7.2, 7.3: "50 files (40 MB each)", "500 files each of
//     size 100 MB", Zipf exponent 1.05/1.1).
//   * make_yahoo_catalog    - Yahoo!-trace-like sizes: hot files are 15-30x
//     larger than cold ones, larger files are more popular (Section 7.7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace spcache {

using FileId = std::uint32_t;

struct FileInfo {
  FileId id = 0;
  Bytes size = 0;
  double request_rate = 0.0;  // lambda_i in requests per second
};

class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(std::vector<FileInfo> files);

  std::size_t size() const { return files_.size(); }
  bool empty() const { return files_.empty(); }
  const FileInfo& file(FileId i) const { return files_[i]; }
  const std::vector<FileInfo>& files() const { return files_; }

  // Aggregate request rate Lambda = sum_i lambda_i.
  double total_rate() const { return total_rate_; }

  // Popularity P_i (Eq. 4). Zero if the catalog carries no traffic.
  double popularity(FileId i) const;

  // Expected load L_i = S_i * P_i (bytes). Input to Eq. 1.
  double load(FileId i) const { return static_cast<double>(files_[i].size) * popularity(i); }

  // max_i L_i, the "hottest file" load used to initialize Algorithm 1.
  double max_load() const;

  Bytes total_bytes() const;

  // Rescale all request rates so that total_rate() == new_total (used to
  // sweep the aggregate request rate, e.g. Fig. 13's 6..22 req/s axis).
  void set_total_rate(double new_total);

  // Randomly permute the request rates across files while keeping sizes in
  // place — the popularity shift of Section 7.4 ("randomly shuffling the
  // popularity ranks of all files under the same Zipf distribution").
  void shuffle_popularities(Rng& rng);

  // Sample a file according to popularity. `cdf` is rebuilt lazily after
  // mutations.
  FileId sample_file(Rng& rng) const;

 private:
  void rebuild_cache() const;

  std::vector<FileInfo> files_;
  double total_rate_ = 0.0;
  mutable std::vector<double> rate_cdf_;
  mutable bool cdf_valid_ = false;
};

// n files of identical size with Zipf(s) popularity summing to total_rate.
// File 0 is the most popular (rank order == id order).
Catalog make_uniform_catalog(std::size_t n_files, Bytes file_size, double zipf_exponent,
                             double total_rate);

// Parameters of the Yahoo!-like size model (see DESIGN.md, substitution
// table). Sizes are lognormal around a cold base size; the hot multiplier
// is drawn uniformly in [hot_mult_lo, hot_mult_hi] for the hottest
// hot_fraction of files, with a smooth ramp for the "warm" middle of the
// popularity range, reproducing the paper's observation that hot files are
// 15-30x larger than cold ones (Fig. 1).
struct YahooSizeModel {
  Bytes cold_mean_size = 8 * kMB;
  double lognormal_sigma = 0.7;
  double hot_fraction = 0.02;    // ~2% of files are hot (>=100 accesses)
  double warm_fraction = 0.20;   // files with moderate access counts
  double hot_mult_lo = 15.0;
  double hot_mult_hi = 30.0;
  double warm_mult = 4.0;
};

// n files, Zipf(s) popularity, Yahoo-like sizes positively correlated with
// popularity ("we assume that a larger file is more popular", Section 7.7).
Catalog make_yahoo_catalog(std::size_t n_files, double zipf_exponent, double total_rate,
                           const YahooSizeModel& model, Rng& rng);

}  // namespace spcache
