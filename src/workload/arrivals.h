// Request arrival processes.
//
// The EC2 experiments model clients as independent Poisson processes whose
// aggregate rate is swept (Sections 2.2, 7.1). The trace-driven simulation
// (Section 7.7) replaces Poisson with the submission sequence of the Google
// cluster trace, which is bursty; we substitute a Markov-modulated Poisson
// process (MMPP) with a heavy burst state (see DESIGN.md).
//
// All generators produce a time-ordered sequence of (arrival time, file id)
// pairs drawn against a Catalog's popularity distribution.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache {

struct Arrival {
  Seconds time = 0.0;
  FileId file = 0;
};

// `n_requests` arrivals of a Poisson process with the catalog's aggregate
// rate; each request targets a file sampled by popularity. This is exactly
// the superposition of the paper's per-client Poisson processes.
std::vector<Arrival> generate_poisson_arrivals(const Catalog& catalog, std::size_t n_requests,
                                               Rng& rng);

// Two-state MMPP: a "calm" state with rate calm_rate and a "burst" state
// with rate burst_rate; state holding times are exponential with the given
// means. Produces bursty, positively autocorrelated arrivals like cluster
// job-submission traces.
struct MmppParams {
  double calm_rate = 5.0;        // requests/second in the calm state
  double burst_rate = 50.0;      // requests/second in the burst state
  Seconds mean_calm_time = 20.0;
  Seconds mean_burst_time = 2.0;

  // Long-run average rate of the process (weighted by stationary holding
  // time fractions); used to compare against a Poisson process of equal
  // average intensity.
  double average_rate() const;
};

std::vector<Arrival> generate_mmpp_arrivals(const Catalog& catalog, const MmppParams& params,
                                            std::size_t n_requests, Rng& rng);

// Index of dispersion of counts over windows of `window` seconds — 1 for
// Poisson, >1 for bursty processes. Diagnostic used in tests to verify the
// MMPP generator actually produces burstier-than-Poisson arrivals.
double index_of_dispersion(const std::vector<Arrival>& arrivals, Seconds window);

}  // namespace spcache
