#include "workload/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spcache {

namespace {

// Log-uniform draw in [lo, hi): density proportional to 1/x, the local
// behaviour of a power law within a bounded segment.
double log_uniform(double lo, double hi, Rng& rng) {
  return lo * std::pow(hi / lo, rng.uniform());
}

}  // namespace

std::vector<TraceFileRecord> generate_yahoo_trace(std::size_t n, const YahooTraceModel& model,
                                                  Rng& rng) {
  assert(model.cold_fraction + model.hot_fraction <= 1.0);
  assert(model.cold_count_threshold >= 2 && model.hot_count_threshold > model.cold_count_threshold);
  std::vector<TraceFileRecord> out(n);
  const double size_mu = std::log(static_cast<double>(model.cold_mean_size)) -
                         0.5 * model.size_sigma * model.size_sigma;
  const auto cold_hi = static_cast<double>(model.cold_count_threshold);
  const auto hot_lo = static_cast<double>(model.hot_count_threshold);
  for (auto& rec : out) {
    const double u = rng.uniform();
    double count;
    if (u < model.cold_fraction) {
      count = log_uniform(1.0, cold_hi, rng);
    } else if (u < 1.0 - model.hot_fraction) {
      count = log_uniform(cold_hi, hot_lo, rng);
    } else {
      count = rng.pareto(hot_lo, model.hot_tail_shape);
    }
    rec.access_count = std::min<std::uint64_t>(model.max_count,
                                               std::max<std::uint64_t>(1, static_cast<std::uint64_t>(count)));
    double mult = 1.0;
    if (rec.access_count >= model.hot_count_threshold) {
      mult = rng.uniform(model.hot_size_mult_lo, model.hot_size_mult_hi);
    } else if (rec.access_count >= model.cold_count_threshold) {
      // Warm band: interpolate the multiplier with log access count.
      const double t = std::log(static_cast<double>(rec.access_count) / cold_hi) /
                       std::log(hot_lo / cold_hi);
      mult = 1.0 + t * (model.hot_size_mult_lo - 1.0);
    }
    rec.size = std::max<Bytes>(static_cast<Bytes>(rng.lognormal(size_mu, model.size_sigma) * mult),
                               64 * kKB);
  }
  return out;
}

TraceSummary summarize_trace(const std::vector<TraceFileRecord>& records,
                             const YahooTraceModel& model) {
  TraceSummary s;
  if (records.empty()) return s;
  std::size_t cold = 0, hot = 0;
  double cold_bytes = 0.0, hot_bytes = 0.0;
  double count_sum = 0.0;
  for (const auto& r : records) {
    count_sum += static_cast<double>(r.access_count);
    if (r.access_count < model.cold_count_threshold) {
      ++cold;
      cold_bytes += static_cast<double>(r.size);
    } else if (r.access_count >= model.hot_count_threshold) {
      ++hot;
      hot_bytes += static_cast<double>(r.size);
    }
  }
  const auto n = static_cast<double>(records.size());
  s.cold_fraction = static_cast<double>(cold) / n;
  s.hot_fraction = static_cast<double>(hot) / n;
  s.mean_access_count = count_sum / n;
  if (cold > 0 && hot > 0) {
    const double cold_mean = cold_bytes / static_cast<double>(cold);
    const double hot_mean = hot_bytes / static_cast<double>(hot);
    s.hot_to_cold_size_ratio = cold_mean == 0.0 ? 0.0 : hot_mean / cold_mean;
  }
  return s;
}

}  // namespace spcache
