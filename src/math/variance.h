// Theorem 1: load-balance comparison of SP-Cache vs. EC-Cache.
//
// The per-server load X is a sum over files of a_i * L_i / k_i where a_i
// indicates whether the file's request touches this server. Theorem 1 shows
//
//   Var(X^EC) / Var(X^SP)  ->  (alpha / k_EC) * (sum_i L_i^2) / (sum_i L_i)
//
// as the cluster grows. This module provides the closed-form finite-N
// variances from the proof, the asymptotic ratio of Eq. 2, and a Monte
// Carlo estimator over random placements used to validate both.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "workload/file_catalog.h"

namespace spcache {

// Exact finite-N variance of the per-server load under SP-Cache with the
// given partition counts k_i (from Eq. 1):
//   Var(X^SP) = sum_i (L_i / k_i)^2 * (k_i/N) * (1 - k_i/N).
double sp_load_variance(const Catalog& catalog, const std::vector<std::size_t>& k,
                        std::size_t n_servers);

// Exact finite-N variance under EC-Cache with a (k, n) code and k+1 late
// binding:
//   Var(X^EC) = sum_i (L_i / k)^2 * ((k+1)/N) * (1 - (k+1)/N).
double ec_load_variance(const Catalog& catalog, std::size_t k_ec, std::size_t n_servers);

// Asymptotic ratio of Eq. 2: (alpha / k_EC) * sum L_i^2 / sum L_i.
double theorem1_asymptotic_ratio(const Catalog& catalog, double alpha, std::size_t k_ec);

// Monte Carlo estimate of Var(X) for SP-Cache: draw `trials` random
// placements (k_i distinct servers each), accumulate the load seen by
// server 0 (all servers are exchangeable), and return the sample variance.
double monte_carlo_sp_variance(const Catalog& catalog, const std::vector<std::size_t>& k,
                               std::size_t n_servers, std::size_t trials, Rng& rng);

// Monte Carlo estimate for EC-Cache: each file has n_ec partitions placed on
// distinct servers; a request reads k_ec + 1 of them chosen uniformly
// (late binding), each fetched partition contributing L_i / k_ec of load.
double monte_carlo_ec_variance(const Catalog& catalog, std::size_t k_ec, std::size_t n_ec,
                               std::size_t n_servers, std::size_t trials, Rng& rng);

}  // namespace spcache
