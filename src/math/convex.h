// One-dimensional convex minimization.
//
// The paper solves the fork-join latency bound (Eq. 9) — a convex program
// in one auxiliary scalar z — with CVXPY. We replace that dependency with
// golden-section search, which converges linearly on any unimodal (in
// particular, convex) function and needs only function evaluations.
#pragma once

#include <functional>

namespace spcache {

struct MinimizeResult {
  double x = 0.0;  // argmin
  double fx = 0.0; // minimum value
  int iterations = 0;
};

// Golden-section search for the minimum of a unimodal `f` on [lo, hi].
// Terminates when the bracket is narrower than `tol` (absolute) or after
// `max_iter` shrink steps.
MinimizeResult golden_section_minimize(const std::function<double(double)>& f, double lo,
                                       double hi, double tol = 1e-9, int max_iter = 200);

}  // namespace spcache
