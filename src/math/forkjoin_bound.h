// Split-merge / fork-join mean-latency upper bound (paper Eq. 9).
//
// A file read forks into one partition read per hosting server and joins on
// the slowest. Following Xiang et al. ("Joint latency and cost optimization
// for erasure-coded data center storage", Lemma 2), the mean of the maximum
// of the per-server sojourn times Q_{i,s} is upper-bounded by
//
//   T_i <= min_z  z + sum_s 1/2 (E[Q_{i,s}] - z)
//                   + sum_s 1/2 sqrt( (E[Q_{i,s}] - z)^2 + Var[Q_{i,s}] )
//
// which is convex in the scalar z and is minimized here by golden-section
// search. For a single server the bound tightens to exactly E[Q].
#pragma once

#include <vector>

#include "math/convex.h"

namespace spcache {

struct QueueStat {
  double mean = 0.0;      // E[Q_{i,s}]
  double variance = 0.0;  // Var[Q_{i,s}]
};

// Evaluate the objective of Eq. 9 at a fixed z (exposed for tests, which
// verify convexity and the analytic derivative sign structure).
double fork_join_objective(const std::vector<QueueStat>& stats, double z);

// The bound itself: min over z of the objective.
double fork_join_upper_bound(const std::vector<QueueStat>& stats);

}  // namespace spcache
