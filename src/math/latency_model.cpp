#include "math/latency_model.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "math/forkjoin_bound.h"

namespace spcache {

LatencyBoundResult fork_join_latency_bound(const LatencyModelInput& input) {
  const std::size_t n_servers = input.bandwidth.size();
  LatencyBoundResult result;
  result.per_file_bound.assign(input.files.size(), 0.0);
  result.utilization.assign(n_servers, 0.0);

  // Pass 1: per-server service classes.
  std::vector<std::vector<ServiceClass>> classes(n_servers);
  for (const auto& f : input.files) {
    for (std::uint32_t s : f.servers) {
      assert(s < n_servers);
      classes[s].push_back(ServiceClass{
          f.lambda, f.partition_bytes / input.bandwidth[s] + f.extra_service_seconds});
    }
  }
  std::vector<Mg1Server> servers(n_servers);
  for (std::size_t s = 0; s < n_servers; ++s) {
    servers[s] = aggregate_server(classes[s]);
    result.utilization[s] = servers[s].rho;
    if (!servers[s].stable()) result.stable = false;
  }

  // Pass 2: per-file fork-join bounds and the weighted system bound. An
  // unstable server makes the bound of every file it hosts (and hence the
  // system bound) infinite.
  double total_lambda = 0.0;
  for (const auto& f : input.files) total_lambda += f.lambda;

  double weighted = 0.0;
  for (std::size_t i = 0; i < input.files.size(); ++i) {
    const auto& f = input.files[i];
    if (f.lambda <= 0.0 || f.servers.empty()) continue;
    bool file_stable = true;
    std::vector<QueueStat> stats;
    stats.reserve(f.servers.size());
    for (std::uint32_t s : f.servers) {
      if (!servers[s].stable()) {
        file_stable = false;
        break;
      }
      const double m = f.partition_bytes / input.bandwidth[s] + f.extra_service_seconds;
      stats.push_back(QueueStat{mg1_sojourn_mean(servers[s], m),
                                mg1_sojourn_variance(servers[s], m)});
    }
    const double bound =
        file_stable
            ? std::max(fork_join_upper_bound(stats), f.floor_seconds) + f.client_overhead_seconds
            : std::numeric_limits<double>::infinity();
    result.per_file_bound[i] = bound;
    if (total_lambda > 0.0) weighted += f.lambda / total_lambda * bound;
  }
  result.mean_bound = weighted;
  return result;
}

}  // namespace spcache
