#include "math/scale_factor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "math/latency_model.h"

namespace spcache {

std::vector<std::size_t> partition_counts_for_alpha(const Catalog& catalog, double alpha,
                                                    std::size_t n_servers) {
  assert(alpha > 0.0 && n_servers > 0);
  std::vector<std::size_t> k(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const double load = catalog.load(static_cast<FileId>(i));
    const double raw = std::ceil(alpha * load);
    k[i] = std::clamp<std::size_t>(raw <= 1.0 ? 1 : static_cast<std::size_t>(raw), 1, n_servers);
  }
  return k;
}

namespace {

LatencyModelInput build_input(const Catalog& catalog, const std::vector<double>& bandwidth,
                              const std::vector<std::size_t>& k,
                              const ScaleFactorConfig& config, std::uint64_t placement_seed) {
  LatencyModelInput input;
  input.bandwidth = bandwidth;
  input.files.resize(catalog.size());
  const std::size_t n_servers = bandwidth.size();
  double mean_bw = 0.0;
  for (double b : bandwidth) mean_bw += b;
  mean_bw /= static_cast<double>(bandwidth.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& f = catalog.file(static_cast<FileId>(i));
    auto& entry = input.files[i];
    entry.lambda = f.request_rate;
    // Effective per-partition transfer bytes, inflated by the goodput loss
    // of k_i parallel connections (see ScaleFactorConfig::goodput), plus
    // the fixed per-fetch setup cost.
    entry.partition_bytes =
        static_cast<double>(f.size) / static_cast<double>(k[i]) / config.goodput.factor(k[i]);
    entry.extra_service_seconds = config.fetch_overhead;
    // Client NIC floor: aggregate multi-stream throughput caps at
    // client_parallel_streams links, degraded by incast goodput.
    const double streams = std::min(static_cast<double>(k[i]), config.client_parallel_streams);
    entry.floor_seconds = static_cast<double>(f.size) /
                          (streams * mean_bw * config.goodput.factor(k[i]));
    entry.client_overhead_seconds =
        config.client_setup_per_fetch * static_cast<double>(k[i]);
    // Per-file deterministic placement: the partial Fisher-Yates sampler
    // returns a prefix-stable sample, so k -> k+1 keeps the first k servers.
    Rng file_rng(placement_seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(i) + 1)));
    const auto servers = file_rng.sample_without_replacement(n_servers, k[i]);
    entry.servers.reserve(servers.size());
    for (std::size_t s : servers) entry.servers.push_back(static_cast<std::uint32_t>(s));
  }
  return input;
}

}  // namespace

double latency_bound_for_alpha(const Catalog& catalog, const std::vector<double>& bandwidth,
                               double alpha, const ScaleFactorConfig& config,
                               std::uint64_t placement_seed) {
  const auto k = partition_counts_for_alpha(catalog, alpha, bandwidth.size());
  const auto input = build_input(catalog, bandwidth, k, config, placement_seed);
  return fork_join_latency_bound(input).mean_bound;
}

ScaleFactorResult find_scale_factor(const Catalog& catalog, const std::vector<double>& bandwidth,
                                    const ScaleFactorConfig& config, Rng& rng) {
  assert(!catalog.empty() && !bandwidth.empty());
  const std::size_t n_servers = bandwidth.size();

  ScaleFactorResult result;
  const double max_load = catalog.max_load();
  assert(max_load > 0.0);
  // alpha^1: hottest file split into N * initial_fraction partitions.
  double alpha = static_cast<double>(n_servers) * config.initial_fraction / max_load;

  // Algorithm 1 line 3 draws the random placement ONCE, outside the loop;
  // re-placing per iteration would inject >1% noise into the improvement
  // test and the search would never converge. We re-derive each iteration's
  // placement from the same seed so successive iterations differ only
  // through the partition counts.
  const std::uint64_t placement_seed = rng.next_u64();
  double best_alpha = alpha;
  double best_bound = std::numeric_limits<double>::infinity();
  std::size_t stale = 0;
  for (std::size_t t = 1; t <= config.max_iterations; ++t) {
    const double bound =
        latency_bound_for_alpha(catalog, bandwidth, alpha, config, placement_seed);
    result.history.emplace_back(alpha, bound);
    result.iterations = t;
    if (bound < best_bound * (1.0 - config.improvement_threshold)) {
      best_bound = bound;
      best_alpha = alpha;
      stale = 0;
    } else if (std::isfinite(bound) && std::isfinite(best_bound)) {
      // An infinite bound (overloaded server at this alpha) neither improves
      // nor counts against patience: keep inflating until the system is
      // stable, then apply the improvement test.
      ++stale;
      if (stale >= config.patience || bound > best_bound * config.divergence_factor) break;
    }
    // Saturation: every file already spans all N servers; larger alphas are
    // indistinguishable.
    const auto k = partition_counts_for_alpha(catalog, alpha, n_servers);
    if (std::all_of(k.begin(), k.end(), [&](std::size_t ki) { return ki == n_servers; })) break;
    alpha *= config.inflation;
  }
  result.alpha = best_alpha;
  result.bound = best_bound;
  result.partition_counts = partition_counts_for_alpha(catalog, result.alpha, n_servers);
  return result;
}

ScaleFactorResult refine_scale_factor(const Catalog& catalog,
                                      const std::vector<double>& bandwidth,
                                      const ScaleFactorConfig& config,
                                      std::uint64_t placement_seed, double warm_alpha) {
  assert(!catalog.empty() && !bandwidth.empty());
  const std::size_t n_servers = bandwidth.size();
  const double max_load = catalog.max_load();
  assert(max_load > 0.0);
  const double alpha1 = static_cast<double>(n_servers) * config.initial_fraction / max_load;

  ScaleFactorResult result;
  const double log_step = std::log(config.inflation);
  // Snap the warm start onto the canonical grid (j >= 0 keeps the hottest
  // file at no fewer partitions than the from-scratch seed point).
  long j0 = 0;
  if (warm_alpha > 0.0 && alpha1 > 0.0) {
    j0 = std::lround(std::log(warm_alpha / alpha1) / log_step);
    if (j0 < 0) j0 = 0;
  }
  const auto grid = [&](long j) { return alpha1 * std::pow(config.inflation, j); };

  double best_alpha = grid(j0);
  double best_bound = std::numeric_limits<double>::infinity();
  std::size_t evals = 0;
  const auto eval = [&](long j) {
    const double alpha = grid(j);
    const double bound =
        latency_bound_for_alpha(catalog, bandwidth, alpha, config, placement_seed);
    result.history.emplace_back(alpha, bound);
    ++evals;
    if (bound < best_bound * (1.0 - config.improvement_threshold)) {
      best_bound = bound;
      best_alpha = alpha;
      return std::pair<double, bool>{bound, true};  // improved
    }
    return std::pair<double, bool>{bound, false};
  };

  // Upward leg (covers the start point), mirroring the from-scratch walk's
  // stopping rules: patience over consecutive finite non-improvements,
  // divergence cutoff, and the all-files-saturated cut. An infinite bound
  // (overloaded server at this alpha) neither improves nor counts against
  // patience — keep inflating until the system is stable.
  std::size_t stale = 0;
  for (long j = j0; evals < config.max_iterations; ++j) {
    const auto [bound, improved] = eval(j);
    if (!improved && std::isfinite(bound) && std::isfinite(best_bound)) {
      ++stale;
      if (stale >= config.patience || bound > best_bound * config.divergence_factor) break;
    } else if (improved) {
      stale = 0;
    }
    const auto k = partition_counts_for_alpha(catalog, grid(j), n_servers);
    if (std::all_of(k.begin(), k.end(), [&](std::size_t ki) { return ki == n_servers; })) break;
  }
  // Downward leg back toward j = 0. An infinite bound here means a server
  // is overloaded at this alpha, and still-smaller alphas only overload it
  // further — the leg stops immediately.
  stale = 0;
  for (long j = j0 - 1; j >= 0 && evals < config.max_iterations; --j) {
    const auto [bound, improved] = eval(j);
    if (!std::isfinite(bound)) break;
    if (!improved) {
      ++stale;
      if (stale >= config.patience || bound > best_bound * config.divergence_factor) break;
    }
  }

  result.alpha = best_alpha;
  result.bound = best_bound;
  result.iterations = evals;
  result.partition_counts = partition_counts_for_alpha(catalog, result.alpha, n_servers);
  return result;
}

}  // namespace spcache
