#include "math/forkjoin_bound.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace spcache {

double fork_join_objective(const std::vector<QueueStat>& stats, double z) {
  double obj = z;
  for (const auto& q : stats) {
    const double d = q.mean - z;
    obj += 0.5 * d + 0.5 * std::sqrt(d * d + q.variance);
  }
  return obj;
}

double fork_join_upper_bound(const std::vector<QueueStat>& stats) {
  assert(!stats.empty());
  if (stats.size() == 1) {
    // With one branch the max is the branch itself; the infimum of the
    // objective as z -> -inf is exactly E[Q].
    return stats[0].mean;
  }
  // Bracket the minimizer. The objective's derivative is
  //   1 - m/2 + 1/2 sum (z - E_s)/sqrt((z-E_s)^2 + V_s),
  // which is negative for z far below min(E) (m >= 2) and positive for z far
  // above max(E), so the minimizer lies within a few standard deviations of
  // the means.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double max_sd = 0.0;
  for (const auto& q : stats) {
    lo = std::min(lo, q.mean);
    hi = std::max(hi, q.mean);
    max_sd = std::max(max_sd, std::sqrt(std::max(0.0, q.variance)));
  }
  const double pad = 10.0 * (max_sd + (hi - lo)) + 1e-9;
  const double tol = std::max(1e-12, 1e-10 * (hi + pad - (lo - pad)));
  const auto res = golden_section_minimize(
      [&stats](double z) { return fork_join_objective(stats, z); }, lo - pad, hi + pad, tol);
  return res.fx;
}

}  // namespace spcache
