#include "math/mg1.h"

#include <cassert>
#include <cmath>

namespace spcache {

Mg1Server aggregate_server(const std::vector<ServiceClass>& classes) {
  Mg1Server s;
  for (const auto& c : classes) {
    assert(c.lambda >= 0.0 && c.mean_service >= 0.0);
    s.lambda += c.lambda;
  }
  if (s.lambda <= 0.0) return s;
  for (const auto& c : classes) {
    const double w = c.lambda / s.lambda;
    const double m = c.mean_service;
    s.mu += w * m;
    s.gamma2 += w * 2.0 * m * m;      // Eq. 12: exponential second moment
    s.gamma3 += w * 6.0 * m * m * m;  // Eq. 13: exponential third moment
  }
  s.rho = s.lambda * s.mu;
  return s;
}

double mg1_sojourn_mean(const Mg1Server& s, double service_mean) {
  assert(s.stable());
  const double wait = s.lambda * s.gamma2 / (2.0 * (1.0 - s.rho));
  return service_mean + wait;  // Eq. 10
}

double mg1_sojourn_variance(const Mg1Server& s, double service_mean) {
  assert(s.stable());
  const double one_minus_rho = 1.0 - s.rho;
  const double term_service = service_mean * service_mean;  // Var of Exp(mean)
  const double term_wait3 = s.lambda * s.gamma3 / (3.0 * one_minus_rho);
  const double term_wait2 =
      s.lambda * s.lambda * s.gamma2 * s.gamma2 / (4.0 * one_minus_rho * one_minus_rho);
  return term_service + term_wait3 + term_wait2;  // Eq. 11
}

double mm1_sojourn_mean(double lambda, double service_rate) {
  assert(service_rate > lambda);
  return 1.0 / (service_rate - lambda);
}

}  // namespace spcache
