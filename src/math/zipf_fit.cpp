#include "math/zipf_fit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "math/convex.h"

namespace spcache {

ZipfFit fit_zipf(const std::vector<std::uint64_t>& access_counts, double max_exponent) {
  std::vector<std::uint64_t> counts;
  counts.reserve(access_counts.size());
  for (auto c : access_counts) {
    if (c > 0) counts.push_back(c);
  }
  if (counts.size() < 2) {
    throw std::invalid_argument("fit_zipf: need at least two files with positive counts");
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const std::size_t n = counts.size();

  // log-likelihood of Zipf(s) over ranks 1..n:
  //   logL(s) = -s * sum_r c_r ln r  -  (sum_r c_r) * ln H_n(s),
  // concave in s (one-parameter exponential family), so golden-section on
  // the negation finds the MLE.
  double total = 0.0, weighted_log_rank = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += static_cast<double>(counts[r]);
    weighted_log_rank += static_cast<double>(counts[r]) * std::log(static_cast<double>(r + 1));
  }
  auto log_likelihood = [&](double s) {
    double harmonic = 0.0;
    for (std::size_t r = 1; r <= n; ++r) harmonic += std::pow(static_cast<double>(r), -s);
    return -s * weighted_log_rank - total * std::log(harmonic);
  };
  const auto res =
      golden_section_minimize([&](double s) { return -log_likelihood(s); }, 0.0, max_exponent,
                              1e-6);
  ZipfFit fit;
  fit.exponent = res.x;
  fit.log_likelihood = -res.fx;
  fit.ranks = n;
  return fit;
}

}  // namespace spcache
