#include "math/variance.h"

#include <cassert>

namespace spcache {

double sp_load_variance(const Catalog& catalog, const std::vector<std::size_t>& k,
                        std::size_t n_servers) {
  assert(k.size() == catalog.size());
  const auto N = static_cast<double>(n_servers);
  double var = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const double load = catalog.load(static_cast<FileId>(i));
    const auto ki = static_cast<double>(k[i]);
    const double p = ki / N;
    const double per_partition = load / ki;
    var += per_partition * per_partition * p * (1.0 - p);
  }
  return var;
}

double ec_load_variance(const Catalog& catalog, std::size_t k_ec, std::size_t n_servers) {
  const auto N = static_cast<double>(n_servers);
  const auto k = static_cast<double>(k_ec);
  const double p = (k + 1.0) / N;
  double var = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const double load = catalog.load(static_cast<FileId>(i));
    const double per_partition = load / k;
    var += per_partition * per_partition * p * (1.0 - p);
  }
  return var;
}

double theorem1_asymptotic_ratio(const Catalog& catalog, double alpha, std::size_t k_ec) {
  double sum_l = 0.0, sum_l2 = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const double load = catalog.load(static_cast<FileId>(i));
    sum_l += load;
    sum_l2 += load * load;
  }
  if (sum_l <= 0.0) return 0.0;
  return alpha / static_cast<double>(k_ec) * sum_l2 / sum_l;
}

double monte_carlo_sp_variance(const Catalog& catalog, const std::vector<std::size_t>& k,
                               std::size_t n_servers, std::size_t trials, Rng& rng) {
  assert(k.size() == catalog.size());
  // Server 0 is representative by exchangeability; a file contributes
  // L_i / k_i iff one of its k_i partitions lands on server 0, which
  // happens with probability k_i / N per placement. Sampling a Bernoulli
  // directly is equivalent to materializing the placement.
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    double x = 0.0;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      const double p = static_cast<double>(k[i]) / static_cast<double>(n_servers);
      if (rng.bernoulli(p)) {
        x += catalog.load(static_cast<FileId>(i)) / static_cast<double>(k[i]);
      }
    }
    sum += x;
    sum2 += x * x;
  }
  const auto n = static_cast<double>(trials);
  const double mean = sum / n;
  return sum2 / n - mean * mean;
}

double monte_carlo_ec_variance(const Catalog& catalog, std::size_t k_ec, std::size_t n_ec,
                               std::size_t n_servers, std::size_t trials, Rng& rng) {
  assert(n_ec >= k_ec + 1 && n_servers >= n_ec);
  // Two-stage event per file: server 0 hosts one of the n_ec partitions
  // w.p. n_ec/N; given hosting, the late-binding read of k_ec+1 partitions
  // selects it w.p. (k_ec+1)/n_ec. Combined Bernoulli((k_ec+1)/N), matching
  // the proof of Theorem 1.
  const double p_host = static_cast<double>(n_ec) / static_cast<double>(n_servers);
  const double p_read = static_cast<double>(k_ec + 1) / static_cast<double>(n_ec);
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    double x = 0.0;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      if (rng.bernoulli(p_host) && rng.bernoulli(p_read)) {
        x += catalog.load(static_cast<FileId>(i)) / static_cast<double>(k_ec);
      }
    }
    sum += x;
    sum2 += x * x;
  }
  const auto n = static_cast<double>(trials);
  const double mean = sum / n;
  return sum2 / n - mean * mean;
}

}  // namespace spcache
