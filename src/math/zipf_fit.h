// Zipf exponent estimation from observed access counts.
//
// Production operators rarely know their workload's skew parameter; the
// paper simply *assumes* Zipf(1.05-1.1) based on prior measurements. This
// fitter closes the loop for real deployments: given per-file access
// counts (e.g. the SP-Master's window counters), it estimates the exponent
// s of p_r proportional to r^{-s} by maximum likelihood over the rank-
// frequency curve, so Algorithm 1 can be driven from measured skew and
// workload drift can be monitored as a scalar.
#pragma once

#include <cstdint>
#include <vector>

namespace spcache {

struct ZipfFit {
  double exponent = 0.0;        // MLE of s
  double log_likelihood = 0.0;  // at the optimum
  std::size_t ranks = 0;        // number of nonzero-count files used
};

// Fit Zipf(s) over ranks 1..n to the given access counts (order
// irrelevant; counts are sorted internally; zero counts are dropped).
// Requires at least two files with positive counts and searches s in
// [0, max_exponent].
ZipfFit fit_zipf(const std::vector<std::uint64_t>& access_counts, double max_exponent = 4.0);

}  // namespace spcache
