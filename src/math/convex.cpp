#include "math/convex.h"

#include <cassert>
#include <cmath>

namespace spcache {

MinimizeResult golden_section_minimize(const std::function<double(double)>& f, double lo,
                                       double hi, double tol, int max_iter) {
  assert(lo <= hi);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c);
  double fd = f(d);
  int iter = 0;
  while ((b - a) > tol && iter < max_iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
    ++iter;
  }
  const double x = 0.5 * (a + b);
  return MinimizeResult{x, f(x), iter};
}

}  // namespace spcache
