// System-level mean-latency bound: wires the M/G/1 per-server model and the
// fork-join bound together (paper Section 5.3 "Summary").
//
// Input: for each file, its arrival rate lambda_i, partition size
// S_i / k_i, and the set of servers C holding its partitions; per-server
// network bandwidth B_s. Output: the per-file latency bounds T_hat_i
// (Eq. 9), the popularity-weighted system bound T_bar (Eq. 8), and the
// per-server utilizations (stability diagnostics).
//
// This module is deliberately independent of src/core: the caching schemes
// produce a `LatencyModelInput` via a thin adapter, which keeps the analytic
// machinery reusable (e.g. the tests drive it with hand-built placements).
#pragma once

#include <cstdint>
#include <vector>

#include "math/mg1.h"

namespace spcache {

struct LatencyModelInput {
  // B_s for each server, bytes/second.
  std::vector<double> bandwidth;

  struct FileEntry {
    double lambda = 0.0;          // request rate of the file, req/s
    double partition_bytes = 0.0; // S_i / k_i
    // Fixed per-fetch service cost (TCP/RPC setup) added to the transfer
    // time at every server; prices the connection overhead of
    // over-partitioning (Sections 4.2/5.3 "networking overhead").
    double extra_service_seconds = 0.0;
    // Client-side lower bound on the read latency (NIC aggregation limit);
    // the per-file bound is max(fork-join bound, floor_seconds).
    double floor_seconds = 0.0;
    // Serialized client-side cost of issuing this file's fetches, added on
    // top of the (floored) fork-join bound.
    double client_overhead_seconds = 0.0;
    std::vector<std::uint32_t> servers;  // distinct servers holding partitions
  };
  std::vector<FileEntry> files;
};

struct LatencyBoundResult {
  // T_hat_i per file. Files with zero lambda get bound 0.
  std::vector<double> per_file_bound;
  // Popularity-weighted system bound T_bar (Eq. 8).
  double mean_bound = 0.0;
  // Per-server utilization rho_s; stable iff all < 1.
  std::vector<double> utilization;
  bool stable = true;
};

LatencyBoundResult fork_join_latency_bound(const LatencyModelInput& input);

}  // namespace spcache
