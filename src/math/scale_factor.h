// Algorithm 1: configuration of the scale factor alpha.
//
// SP-Cache splits file i into k_i = ceil(alpha * S_i * P_i) partitions
// (Eq. 1). Algorithm 1 finds the "elbow" of the latency bound as a function
// of alpha by exponential search:
//
//   1. Start with alpha^1 = (N/3) / max_i (P_i S_i)  — the hottest file gets
//      N/3 partitions.
//   2. Place partitions randomly on distinct servers, compute the fork-join
//      latency bound T_hat(alpha) (Eqs. 8-13).
//   3. While the bound improves by more than 1% per step, inflate alpha by
//      1.5x; otherwise stop and return the current alpha.
//
// Partition counts are additionally capped at the number of servers N,
// since no two partitions of a file may share a server (Section 5.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/network_model.h"
#include "workload/file_catalog.h"

namespace spcache {

struct ScaleFactorConfig {
  double improvement_threshold = 0.01;  // "improvement drops below 1%"
  double inflation = 1.5;               // alpha multiplier per step
  std::size_t max_iterations = 64;      // hard cap (the paper needs ~5-15)
  double initial_fraction = 1.0 / 3.0;  // hottest file starts at N/3 partitions

  // Patience: number of consecutive finite, non-improving iterations before
  // the search stops (1 = the paper's literal rule: stop as soon as the
  // improvement drops below the threshold). The search returns the best
  // alpha visited — the elbow — rather than the last one; the patience
  // window lets it walk across the local bump the split-merge bound
  // exhibits when files first cross from k=1 to k=2 (the loose +sigma
  // penalty of Eq. 9 at two branches). The search also stops as soon as
  // every file is split across all N servers, since larger alphas cannot
  // change the layout further.
  std::size_t patience = 10;
  // Stop immediately once the bound deteriorates this far past the best —
  // the search has clearly walked beyond the elbow.
  double divergence_factor = 3.0;

  // Fixed per-partition-fetch cost (TCP connection + RPC/metadata setup)
  // added to every analytic service time: each fetch occupies the server
  // briefly regardless of partition size.
  Seconds fetch_overhead = 0.01;

  // Serialized client-side cost per issued fetch, mirrored by SimConfig.
  Seconds client_setup_per_fetch = 0.008;

  // Client-side NIC model, mirrored by SimConfig: a k-way parallel read
  // cannot finish faster than S / (min(k, streams) * B * g(k)) — parallel
  // streams raise aggregate client throughput up to `client_parallel_
  // streams` links' worth, while incast/protocol overhead (the goodput
  // factor) claws it back as k grows. This is the term that prices
  // over-partitioning and yields the Fig. 8 elbow and Fig. 11 selectivity.
  double client_parallel_streams = 4.0;

  // Connection-count goodput model folded into the analytic service times:
  // a k_i-partition read transfers each partition at B_s * g(k_i). The
  // paper's bound uses the *measured available* bandwidth B_s, which in a
  // real deployment already embeds this effect; making it explicit lets the
  // bound price the network overhead of over-partitioning and produces the
  // elbow of Fig. 8 (see DESIGN.md "Key modelling decisions").
  GoodputModel goodput = GoodputModel::calibrated(gbps(1.0));
};

struct ScaleFactorResult {
  double alpha = 0.0;  // the best (elbow) alpha visited by the search
  double bound = 0.0;  // T_hat at the returned alpha (seconds)
  std::size_t iterations = 0;
  std::vector<std::size_t> partition_counts;  // k_i at the returned alpha
  // (alpha, bound) at every step — used by Fig. 8's sweep and by tests that
  // assert the bound is non-increasing along the search path.
  std::vector<std::pair<double, double>> history;
};

// Partition counts for a given alpha: k_i = min(N, max(1, ceil(alpha L_i))).
std::vector<std::size_t> partition_counts_for_alpha(const Catalog& catalog, double alpha,
                                                    std::size_t n_servers);

// Evaluate the latency bound for a fixed alpha under a random distinct-server
// placement derived deterministically from `placement_seed`, pricing
// per-connection goodput loss and fixed per-fetch overhead via `config`.
// Placements are *per-file stable*: file i's servers depend only on
// (placement_seed, i, k_i), and growing k_i extends the same sampled prefix
// — so bounds at nearby alphas differ only through the partition counts,
// keeping the Algorithm 1 improvement test free of placement noise.
double latency_bound_for_alpha(const Catalog& catalog, const std::vector<double>& bandwidth,
                               double alpha, const ScaleFactorConfig& config,
                               std::uint64_t placement_seed);

// Algorithm 1. `bandwidth` supplies B_s for each of the N servers.
ScaleFactorResult find_scale_factor(const Catalog& catalog, const std::vector<double>& bandwidth,
                                    const ScaleFactorConfig& config, Rng& rng);

// Warm-started (incremental) Algorithm 1, for the online controller that
// re-runs the search whenever observed imbalance crosses a threshold.
//
// The search walks the SAME geometric alpha grid as `find_scale_factor`
// — alpha^1 * inflation^j with alpha^1 = (N * initial_fraction) / max_i
// (P_i S_i), recomputed from the live catalog — but starts at the grid
// point nearest `warm_alpha` (the previous epoch's elbow) instead of j = 0,
// then hill-walks outward in both directions with the same improvement
// threshold / patience / divergence rules. When the popularity shift is
// modest the previous elbow is near the new one and the walk touches a
// handful of grid points instead of the full exponential sweep; the
// returned elbow matches a from-scratch run on the same catalog and
// placement seed (the alpha-controller property test pins this within one
// grid step). `placement_seed` must be held fixed across re-runs so bounds
// at different epochs are comparable (find_scale_factor draws it from its
// Rng once; the controller stores it).
ScaleFactorResult refine_scale_factor(const Catalog& catalog,
                                      const std::vector<double>& bandwidth,
                                      const ScaleFactorConfig& config,
                                      std::uint64_t placement_seed, double warm_alpha);

}  // namespace spcache
