// M/G/1 FIFO queue formulas (paper Section 5.3, Eqs. 5-6 and 10-13).
//
// Each cache server s is modelled as an M/G/1 queue whose service time is a
// popularity-weighted mixture of exponentials: a read of file i's partition
// takes Exp(mean = (S_i/k_i)/B_s). The Pollaczek-Khinchin transform then
// gives the mean and variance of the sojourn time Q_{i,s} (queueing +
// service) experienced by file i's partition read:
//
//   E[Q_{i,s}]   = S_i/(k_i B_s) + Lambda_s Gamma2_s / (2 (1 - rho_s))      (10)
//   Var[Q_{i,s}] = (S_i/(k_i B_s))^2 + Lambda_s Gamma3_s / (3 (1 - rho_s))
//                  + Lambda_s^2 Gamma2_s^2 / (4 (1 - rho_s)^2)              (11)
//
// where Gamma2/Gamma3 are the second/third moments of the server's service
// time (Eqs. 12-13) and rho_s = Lambda_s * mu_s its utilization.
#pragma once

#include <vector>

namespace spcache {

// One file class at a server: arrival rate of partition reads and the mean
// transfer (service) time of one partition.
struct ServiceClass {
  double lambda = 0.0;        // partition-read arrival rate at this server
  double mean_service = 0.0;  // S_i / (k_i * B_s), seconds
};

// Aggregated server-level quantities (Eqs. 5, 6, 12, 13).
struct Mg1Server {
  double lambda = 0.0;  // Lambda_s: total arrival rate
  double mu = 0.0;      // mean service time (popularity-weighted), Eq. 6
  double gamma2 = 0.0;  // E[X^2] of service time, Eq. 12
  double gamma3 = 0.0;  // E[X^3] of service time, Eq. 13
  double rho = 0.0;     // utilization Lambda_s * mu

  bool stable() const { return rho < 1.0; }
};

// Build server-level moments from its file classes. Each class's service
// time is exponential with the given mean, so E[X^2] = 2 m^2, E[X^3] = 6 m^3
// per class, mixed with weights lambda_i / Lambda_s.
Mg1Server aggregate_server(const std::vector<ServiceClass>& classes);

// Mean sojourn time of a class with mean service `service_mean` at server
// `s` (Eq. 10). Requires s.stable().
double mg1_sojourn_mean(const Mg1Server& s, double service_mean);

// Variance of the sojourn time (Eq. 11). Requires s.stable().
double mg1_sojourn_variance(const Mg1Server& s, double service_mean);

// Classic M/M/1 sanity references used by the test suite: mean sojourn
// W = 1 / (mu_rate - lambda) for service *rate* mu_rate.
double mm1_sojourn_mean(double lambda, double service_rate);

}  // namespace spcache
