// Read plans: what one file-read request does inside the cluster.
//
// A caching scheme (src/core) turns a request for file i into a set of
// partition fetches plus a join rule. The simulator executes the plan
// against its per-server FIFO queues:
//
//   * SP-Cache / simple partition / chunking: fetch all k_i partitions,
//     join on all of them (`needed == fetches.size()`).
//   * EC-Cache: fetch k+1 of the n coded partitions, join on the k fastest
//     (late binding), then pay `post_process` decode time.
//   * Selective replication / stock: fetch one replica.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace spcache {

struct PartitionFetch {
  std::uint32_t server = 0;
  Bytes bytes = 0;
};

struct ReadPlan {
  std::vector<PartitionFetch> fetches;
  // Number of completed fetches after which the request's network part is
  // done; must be in [1, fetches.size()].
  std::size_t needed = 0;
  // Client-side post-processing (e.g. RS decode) added after the join.
  Seconds post_process = 0.0;

  bool valid() const {
    return !fetches.empty() && needed >= 1 && needed <= fetches.size();
  }
};

struct WritePlan {
  std::vector<PartitionFetch> stores;  // partition placements with sizes
  // Client-side pre-processing (e.g. RS encode) paid before transfer.
  Seconds pre_process = 0.0;
};

}  // namespace spcache
