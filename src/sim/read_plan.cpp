#include "sim/read_plan.h"

// Header-only data carriers; this translation unit exists so the library
// has a home for future out-of-line helpers and to keep the build graph
// uniform (one .cpp per header).
