// Discrete-event simulation of the cluster cache.
//
// The simulator realizes exactly the system the paper analyzes and deploys:
// N cache servers, each a FIFO queue serving one partition transfer at a
// time (M/G/1 when arrivals are Poisson); clients fork a request into
// parallel partition fetches and join per the scheme's ReadPlan. On top of
// the paper's analytic model it adds the effects the model deliberately
// omits (Section 5.3): goodput loss from parallel connections (Fig. 6),
// injected stragglers (Section 4.2), and codec post-processing — which is
// why measured latencies can exceed the analytic bound, as in Fig. 8.
//
// Virtual time is in seconds; the engine is deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "net/network_model.h"
#include "sim/read_plan.h"
#include "workload/arrivals.h"
#include "workload/straggler.h"

namespace spcache {

struct SimConfig {
  std::size_t n_servers = 30;
  // Per-server bandwidth; if shorter than n_servers the last value is
  // repeated (typically a single uniform entry).
  std::vector<Bandwidth> bandwidth{gbps(1.0)};
  GoodputModel goodput{};
  bool exponential_jitter = true;
  // Fixed per-partition-fetch service cost (TCP + RPC/metadata setup),
  // matching the analytic model's ScaleFactorConfig::fetch_overhead.
  // Stragglers stretch it along with the transfer.
  Seconds fetch_overhead = 0.01;
  // Client NIC model (mirrors ScaleFactorConfig): a request's latency can
  // never beat needed_bytes / (min(k, streams) * B_client * g(k)). Parallel
  // streams raise the client's aggregate download throughput up to
  // `client_parallel_streams` links' worth; the goodput factor g(k) models
  // incast/protocol losses as the stream count grows. Disable for pure
  // M/G/1 validation.
  bool client_nic_floor = true;
  double client_parallel_streams = 4.0;
  // Serialized client-side cost per issued fetch (connection setup, RPC
  // marshalling): a k-way read pays k * this on top of the network time.
  // This is the per-chunk cost that makes small fixed-size chunks slow at
  // low load (Fig. 14) and tempers over-partitioning.
  Seconds client_setup_per_fetch = 0.008;
  StragglerModel stragglers = StragglerModel::none();
  // Warm-up: the first `warmup_requests` arrivals are simulated (they load
  // the queues) but excluded from the latency sample, so reported metrics
  // reflect steady state rather than the empty-system transient.
  std::size_t warmup_requests = 0;
  // Metrics time series: when > 0, per-window mean latency and completion
  // throughput are collected into SimResult::window_* (window length in
  // virtual seconds). 0 disables the series.
  Seconds metrics_window = 0.0;
  std::uint64_t seed = 1;
};

struct SimResult {
  Sample latencies;                  // per-request end-to-end read latency
  std::vector<double> server_bytes;  // total bytes served per server
  std::vector<double> server_busy_seconds;  // cumulative service time per server
  Seconds horizon = 0.0;             // virtual time of the last event
  std::size_t completed = 0;
  // Time series (empty unless SimConfig::metrics_window > 0): indexed by
  // window number; windows with no completions hold 0 latency.
  Seconds metrics_window = 0.0;
  std::vector<double> window_mean_latency;
  std::vector<std::size_t> window_completions;

  double mean_latency() const { return latencies.mean(); }
  double tail_latency(double q = 0.95) const { return latencies.percentile(q); }
  double cv() const { return latencies.cv(); }
  double imbalance() const { return imbalance_factor(server_bytes); }

  // Fraction of the simulated horizon each server spent serving fetches.
  std::vector<double> utilization() const;
};

class Simulation {
 public:
  // Planner: maps (file, rng) -> ReadPlan. Called once per request; the rng
  // supports randomized choices (replica selection, late-binding subsets).
  using Planner = std::function<ReadPlan(FileId, Rng&)>;

  explicit Simulation(SimConfig config);

  const SimConfig& config() const { return config_; }
  Bandwidth server_bandwidth(std::size_t s) const;

  // Execute all arrivals to completion and collect metrics. Optionally
  // `latency_scale` rescales individual request latencies after the fact
  // (used by the trace-driven cache-miss experiment, where a miss costs 3x);
  // it maps the request index to a multiplicative factor.
  SimResult run(const std::vector<Arrival>& arrivals, const Planner& planner,
                const std::function<double(std::size_t)>& latency_scale = {});

 private:
  SimConfig config_;
};

// Convenience: mean service-time sampler shared with the write-latency
// experiment (Fig. 22) — the time for one client to push `bytes` through
// `connections` parallel streams of a `bandwidth` link.
Seconds sample_transfer_time(const SimConfig& config, std::size_t server, Bytes bytes,
                             std::size_t connections, Rng& rng);

}  // namespace spcache
