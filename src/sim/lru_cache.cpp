#include "sim/lru_cache.h"

#include <cassert>

namespace spcache {

LruCache::LruCache(Bytes budget) : budget_(budget) {}

bool LruCache::access(FileId file, Bytes footprint) {
  auto it = entries_.find(file);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.position);
    return true;
  }
  ++misses_;
  if (footprint > budget_) {
    // The file can never fit; serve it uncached (no admission).
    return false;
  }
  evict_until_fits(footprint);
  lru_.push_front(file);
  entries_.emplace(file, Entry{lru_.begin(), footprint});
  used_ += footprint;
  return false;
}

void LruCache::evict_until_fits(Bytes incoming) {
  while (used_ + incoming > budget_ && !lru_.empty()) {
    const FileId victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    assert(it != entries_.end());
    used_ -= it->second.footprint;
    entries_.erase(it);
  }
}

double LruCache::hit_ratio() const {
  const std::size_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void LruCache::reset_counters() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace spcache
