#include "sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace spcache {

namespace {

// One outstanding partition fetch, queued at a server.
struct QueuedFetch {
  std::size_t request = 0;  // index into the in-flight request table
  Seconds service_time = 0.0;
  Bytes bytes = 0;
};

struct ServerState {
  std::deque<QueuedFetch> queue;
  bool busy = false;
  double bytes_served = 0.0;
  double busy_seconds = 0.0;
};

struct RequestState {
  std::size_t remaining_to_join = 0;  // fetches still needed before join
  std::size_t outstanding = 0;        // fetches not yet completed at all
  Seconds arrival = 0.0;
  Seconds post_process = 0.0;
  Seconds client_floor = 0.0;  // NIC-limited minimum read time
  Seconds client_setup = 0.0;  // serialized per-fetch issuance cost
  double scale = 1.0;
  bool recorded = false;
};

enum class EventType { kArrival, kServiceDone };

struct Event {
  Seconds time = 0.0;
  EventType type = EventType::kArrival;
  std::uint64_t seq = 0;  // tie-breaker for determinism
  std::size_t index = 0;  // arrival index or server id

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

}  // namespace

Simulation::Simulation(SimConfig config) : config_(std::move(config)) {
  assert(config_.n_servers > 0);
  assert(!config_.bandwidth.empty());
}

Bandwidth Simulation::server_bandwidth(std::size_t s) const {
  const auto& bw = config_.bandwidth;
  return s < bw.size() ? bw[s] : bw.back();
}

Seconds sample_transfer_time(const SimConfig& config, std::size_t server, Bytes bytes,
                             std::size_t connections, Rng& rng) {
  const Bandwidth raw =
      server < config.bandwidth.size() ? config.bandwidth[server] : config.bandwidth.back();
  TransferModel model{raw, config.goodput, config.exponential_jitter};
  return model.sample(bytes, connections, rng);
}

SimResult Simulation::run(const std::vector<Arrival>& arrivals, const Planner& planner,
                          const std::function<double(std::size_t)>& latency_scale) {
  Rng rng(config_.seed);
  std::vector<ServerState> servers(config_.n_servers);
  std::vector<RequestState> requests(arrivals.size());

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    events.push(Event{arrivals[i].time, EventType::kArrival, seq++, i});
  }

  SimResult result;
  result.latencies.reserve(arrivals.size());
  result.server_bytes.assign(config_.n_servers, 0.0);
  result.metrics_window = config_.metrics_window;
  std::vector<double> window_latency_sum;

  auto start_service = [&](std::size_t s, Seconds now) {
    auto& server = servers[s];
    if (server.busy || server.queue.empty()) return;
    server.busy = true;
    events.push(Event{now + server.queue.front().service_time, EventType::kServiceDone, seq++, s});
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const Seconds now = ev.time;
    result.horizon = now;

    if (ev.type == EventType::kArrival) {
      const std::size_t i = ev.index;
      const ReadPlan plan = planner(arrivals[i].file, rng);
      assert(plan.valid());
      auto& req = requests[i];
      req.arrival = now;
      req.remaining_to_join = plan.needed;
      req.outstanding = plan.fetches.size();
      req.post_process = plan.post_process;
      req.scale = latency_scale ? latency_scale(i) : 1.0;
      const std::size_t connections = plan.fetches.size();
      req.client_setup = config_.client_setup_per_fetch * static_cast<double>(connections);
      if (config_.client_nic_floor) {
        // The client must pull `needed` partitions' worth of bytes through
        // its own NIC: min(k, streams) links of aggregate throughput at the
        // k-connection goodput.
        double total_bytes = 0.0;
        for (const auto& fetch : plan.fetches) total_bytes += static_cast<double>(fetch.bytes);
        const double needed_bytes =
            total_bytes * static_cast<double>(plan.needed) / static_cast<double>(connections);
        const double streams =
            std::min(static_cast<double>(connections), config_.client_parallel_streams);
        const Bandwidth base = config_.bandwidth.front();
        req.client_floor =
            needed_bytes / (streams * base * config_.goodput.factor(connections));
      }
      for (const auto& fetch : plan.fetches) {
        assert(fetch.server < config_.n_servers);
        // Service time = fixed fetch setup + jittered transfer at the
        // server's (goodput-degraded) effective bandwidth, stretched by a
        // straggler factor if injected.
        Seconds service = config_.fetch_overhead +
                          sample_transfer_time(config_, fetch.server, fetch.bytes, connections, rng);
        service *= config_.stragglers.sample_slowdown(rng);
        servers[fetch.server].queue.push_back(QueuedFetch{i, service, fetch.bytes});
        start_service(fetch.server, now);
      }
      continue;
    }

    // Service completion at server ev.index.
    const std::size_t s = ev.index;
    auto& server = servers[s];
    assert(server.busy && !server.queue.empty());
    const QueuedFetch done = server.queue.front();
    server.queue.pop_front();
    server.busy = false;
    server.bytes_served += static_cast<double>(done.bytes);
    server.busy_seconds += done.service_time;
    start_service(s, now);

    auto& req = requests[done.request];
    assert(req.outstanding > 0);
    --req.outstanding;
    if (req.remaining_to_join > 0) {
      --req.remaining_to_join;
      if (req.remaining_to_join == 0 && !req.recorded) {
        req.recorded = true;
        ++result.completed;
        if (done.request >= config_.warmup_requests) {
          const Seconds network = std::max(now - req.arrival, req.client_floor);
          const Seconds latency = (network + req.client_setup + req.post_process) * req.scale;
          result.latencies.add(latency);
          if (config_.metrics_window > 0.0) {
            const auto w = static_cast<std::size_t>(now / config_.metrics_window);
            if (w >= window_latency_sum.size()) {
              window_latency_sum.resize(w + 1, 0.0);
              result.window_completions.resize(w + 1, 0);
            }
            window_latency_sum[w] += latency;
            ++result.window_completions[w];
          }
        }
      }
    }
  }

  result.server_busy_seconds.resize(config_.n_servers);
  for (std::size_t s = 0; s < config_.n_servers; ++s) {
    result.server_bytes[s] = servers[s].bytes_served;
    result.server_busy_seconds[s] = servers[s].busy_seconds;
  }
  if (config_.metrics_window > 0.0) {
    result.window_mean_latency.resize(window_latency_sum.size(), 0.0);
    for (std::size_t w = 0; w < window_latency_sum.size(); ++w) {
      if (result.window_completions[w] > 0) {
        result.window_mean_latency[w] =
            window_latency_sum[w] / static_cast<double>(result.window_completions[w]);
      }
    }
  }
  return result;
}

std::vector<double> SimResult::utilization() const {
  std::vector<double> out(server_busy_seconds.size(), 0.0);
  if (horizon <= 0.0) return out;
  for (std::size_t s = 0; s < out.size(); ++s) out[s] = server_busy_seconds[s] / horizon;
  return out;
}

}  // namespace spcache
