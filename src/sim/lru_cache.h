// Byte-budgeted LRU cache (Section 7.6: "we throttled the cluster caches
// ... and used the LRU policy for cache replacement").
//
// Keys are files; each file occupies its *cached footprint*, which depends
// on the scheme: S_i for SP-Cache (redundancy-free), 1.4 * S_i for EC-Cache
// with a (10,14) code, r_i * S_i for selective replication. The hit-ratio
// experiment (Fig. 20) replays the access stream through one LRU per scheme
// and compares hit ratios under a shared byte budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache {

class LruCache {
 public:
  explicit LruCache(Bytes budget);

  Bytes budget() const { return budget_; }
  Bytes used() const { return used_; }
  std::size_t resident_files() const { return entries_.size(); }

  // Record an access to `file` with cached footprint `footprint` bytes.
  // Returns true on hit. On miss the file is admitted (if it fits the
  // budget at all), evicting least-recently-used files as needed.
  bool access(FileId file, Bytes footprint);

  bool contains(FileId file) const { return entries_.count(file) > 0; }

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  double hit_ratio() const;

  void reset_counters();

 private:
  void evict_until_fits(Bytes incoming);

  Bytes budget_;
  Bytes used_ = 0;
  std::list<FileId> lru_;  // front = most recent
  struct Entry {
    std::list<FileId>::iterator position;
    Bytes footprint;
  };
  std::unordered_map<FileId, Entry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace spcache
