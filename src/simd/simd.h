// Runtime-dispatched SIMD kernels for the data plane.
//
// Everything that moves bytes in bulk — GF(256) multiply-accumulate for the
// Reed-Solomon codec, CRC-32 for block integrity, and the fused
// checksum-while-copying primitive — funnels through one kernel table here.
// The table is selected once at startup by CPUID (scalar / SSSE3 / AVX2,
// with PCLMULQDQ-folded CRC where available) and can be clamped down for
// testing via the SPCACHE_SIMD environment variable or force_level().
//
// All kernels are bit-exact across levels: the SSSE3/AVX2 GF kernels use
// split-nibble PSHUFB table lookups over the same AES polynomial 0x11B as
// the scalar code, and the PCLMUL CRC folds the same reflected IEEE
// polynomial 0xEDB88320 (not the SSE4.2 crc32 instruction, which computes
// CRC-32C). The cross-ISA equivalence suite in tests/test_simd_kernels.cpp
// fuzzes every kernel pair across odd lengths and unaligned offsets.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spcache::simd {

// Kernel tiers, ordered: a higher level implies every lower one works too.
enum class Level : int { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };

const char* level_name(Level level);

// Highest level this CPU supports (detected once, cached).
Level detected_level();
bool level_supported(Level level);

// Level the process is actually running: detected_level() clamped by the
// SPCACHE_SIMD environment variable (scalar|ssse3|avx2) and by force_level().
Level active_level();

// Test hook: swap the active kernel table. Requests above detected_level()
// are clamped. Safe to call concurrently with kernel use (atomic pointer
// swap), but intended for test setup, not steady-state switching.
void force_level(Level level);

struct Kernels {
  Level level;

  // GF(256) slice ops over x^8 + x^4 + x^3 + x + 1 (0x11B).
  // dst and src must be the same length; they may alias only exactly
  // (dst == src), never partially overlap.
  //   gf256_mul:     dst[i]  = c * src[i]
  //   gf256_mul_add: dst[i] ^= c * src[i]
  void (*gf256_mul)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t c);
  void (*gf256_mul_add)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        std::uint8_t c);

  // Fused two-source accumulate: dst[i] ^= c0*src0[i] ^ c1*src1[i].
  // One read-modify-write of dst covers two sources, which halves the
  // dst traffic of the RS parity inner loop (its bottleneck once the
  // shard chunks are cache-blocked). Same aliasing rules as gf256_mul_add
  // for each source independently.
  void (*gf256_mul_add2)(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                         const std::uint8_t* src1, std::uint8_t c1, std::size_t n);

  // CRC-32 (reflected IEEE 0xEDB88320) on the *raw* state convention:
  // state starts at 0xFFFFFFFF and is xor-finalized by the caller
  // (common/crc32.h wraps this with the usual init/update/final API).
  std::uint32_t (*crc32_update)(std::uint32_t state, const std::uint8_t* p,
                                std::size_t n);

  // Fused copy+checksum: copies src into dst and returns the CRC state
  // advanced over those same bytes, touching each byte once. dst and src
  // must not overlap.
  std::uint32_t (*crc32_copy_update)(std::uint32_t state, std::uint8_t* dst,
                                     const std::uint8_t* src, std::size_t n);
};

// Active kernel table (one atomic load; hot-path safe).
const Kernels& kernels();

// Table for a specific level, clamped to detected_level(). Used by the
// equivalence tests to pit levels against each other in-process.
const Kernels& kernels_for(Level level);

}  // namespace spcache::simd
