// PCLMULQDQ-folded CRC-32 for the reflected IEEE polynomial 0xEDB88320.
//
// Note the SSE4.2 `crc32` instruction computes CRC-32C (Castagnoli) — the
// wrong polynomial for this code base — so hardware acceleration has to go
// through carry-less multiply folding instead. This is the classic Intel
// "Fast CRC Computation Using PCLMULQDQ" scheme as deployed in zlib: four
// 128-bit accumulators fold 64 input bytes per iteration, then fold down
// 4→1, 16 bytes at a time, 128→64 bits, and a Barrett reduction produces
// the 32-bit state. Operates on the raw (pre-final-xor) state, same
// convention as the scalar kernel, and is bit-exact with it.
#include "simd/kernels_impl.h"

#if defined(SPCACHE_SIMD_X86)

#include <smmintrin.h>
#include <wmmintrin.h>

namespace spcache::simd::detail {

namespace {

// Folding constants for 0xEDB88320 in the bit-reflected domain.
alignas(16) const std::uint64_t k1k2[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) const std::uint64_t k3k4[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) const std::uint64_t k5k0[2] = {0x0163cd6124, 0x0000000000};
alignas(16) const std::uint64_t poly[2] = {0x01db710641, 0x01f7011641};

// Folds `len` bytes (len >= 64 and a multiple of 16) into the running state.
// When `dst` is non-null every loaded block is also stored there — the fused
// copy path reuses the loads the checksum needed anyway.
template <bool kCopy>
std::uint32_t fold(std::uint32_t crc, std::uint8_t* dst, const std::uint8_t* buf,
                   std::size_t len) {
  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  if constexpr (kCopy) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x00), x1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x10), x2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x20), x3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x30), x4);
    dst += 64;
  }
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 64;
  len -= 64;

  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
    if constexpr (kCopy) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x00), y5);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x10), y6);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x20), y7);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0x30), y8);
      dst += 64;
    }
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);
    buf += 64;
    len -= 64;
  }

  // Fold the four accumulators into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    if constexpr (kCopy) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), x2);
      dst += 16;
    }
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 16;
    len -= 16;
  }

  // Fold 128 bits down to 64.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction 64 → 32 bits.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace

std::uint32_t crc32_update_pclmul(std::uint32_t state, const std::uint8_t* p,
                                  std::size_t n) {
  if (n < 64) return crc32_update_scalar(state, p, n);
  const std::size_t folded = n & ~static_cast<std::size_t>(15);
  state = fold<false>(state, nullptr, p, folded);
  return crc32_update_scalar(state, p + folded, n - folded);
}

std::uint32_t crc32_copy_update_pclmul(std::uint32_t state, std::uint8_t* dst,
                                       const std::uint8_t* src, std::size_t n) {
  if (n < 64) return crc32_copy_update_scalar(state, dst, src, n);
  const std::size_t folded = n & ~static_cast<std::size_t>(15);
  state = fold<true>(state, dst, src, folded);
  return crc32_copy_update_scalar(state, dst + folded, src + folded, n - folded);
}

}  // namespace spcache::simd::detail

#endif  // SPCACHE_SIMD_X86
