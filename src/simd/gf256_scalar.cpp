#include <cstring>

#include "simd/kernels_impl.h"

namespace spcache::simd::detail {

namespace {

// Below this length the 256-byte product row costs more to pull into cache
// than it saves; two lookups in the (hot, shared) log/exp tables win.
constexpr std::size_t kTinySlice = 16;

}  // namespace

void gf256_mul_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                      std::uint8_t c) {
  if (n == 0) return;
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const auto& t = gf256_tables();
  if (n < kTinySlice) {
    const unsigned log_c = t.log[c];
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t v = src[i];
      dst[i] = v ? t.exp[t.log[v] + log_c] : 0;
    }
    return;
  }
  const std::uint8_t* row = t.mul[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void gf256_mul_add_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          std::uint8_t c) {
  if (n == 0 || c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = gf256_tables();
  if (n < kTinySlice) {
    const unsigned log_c = t.log[c];
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t v = src[i];
      if (v) dst[i] ^= t.exp[t.log[v] + log_c];
    }
    return;
  }
  const std::uint8_t* row = t.mul[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void gf256_mul_add2_scalar(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                           const std::uint8_t* src1, std::uint8_t c1, std::size_t n) {
  // One pass over dst for both accumulations. Delegate when a term drops
  // out; mul[1] is the identity row, so c == 1 needs no special case.
  if (c0 == 0) {
    gf256_mul_add_scalar(dst, src1, n, c1);
    return;
  }
  if (c1 == 0) {
    gf256_mul_add_scalar(dst, src0, n, c0);
    return;
  }
  const auto& t = gf256_tables();
  const std::uint8_t* r0 = t.mul[c0];
  const std::uint8_t* r1 = t.mul[c1];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= r0[src0[i]] ^ r1[src1[i]];
}

}  // namespace spcache::simd::detail
