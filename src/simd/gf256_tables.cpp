#include "simd/kernels_impl.h"

namespace spcache::simd::detail {

namespace {

constexpr std::uint16_t kPolynomial = 0x11B;

// Carry-less peasant multiply mod 0x11B. Deliberately independent of the
// log/exp derivation so the full product table cross-checks it: the
// equivalence suite also compares against erasure/gf256's tables.
constexpr std::uint8_t peasant_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0;
  std::uint16_t x = a;
  for (std::uint8_t bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= x;
    x <<= 1;
    if (x & 0x100) x ^= kPolynomial;
  }
  return static_cast<std::uint8_t>(acc);
}

Gf256Tables make_tables() {
  Gf256Tables t{};
  // log/exp via the generator 0x03 (x + 1), same as erasure/gf256.
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    std::uint16_t nx = static_cast<std::uint16_t>(x << 1) ^ x;
    if (nx & 0x100) nx ^= kPolynomial;
    x = nx & 0xFF;
  }
  for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  t.log[0] = 0;  // unused; guarded by callers

  for (int c = 0; c < 256; ++c) {
    for (int v = 0; v < 256; ++v) {
      t.mul[c][v] = peasant_mul(static_cast<std::uint8_t>(c),
                                static_cast<std::uint8_t>(v));
    }
    for (int i = 0; i < 16; ++i) {
      t.nib_lo[c][i] = t.mul[c][i];
      t.nib_hi[c][i] = t.mul[c][i << 4];
    }
  }
  return t;
}

}  // namespace

const Gf256Tables& gf256_tables() {
  static const Gf256Tables t = make_tables();
  return t;
}

}  // namespace spcache::simd::detail
