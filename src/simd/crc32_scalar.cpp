// Scalar CRC-32 kernels: slicing-by-8 over the reflected IEEE polynomial
// 0xEDB88320, plus the fused copy variant that stores each 8-byte word as it
// folds it. Explicit byte loads keep both endian-agnostic.
#include <array>
#include <cstring>

#include "simd/kernels_impl.h"

namespace spcache::simd::detail {

namespace {

using Crc32Tables = std::array<std::array<std::uint32_t, 256>, 8>;

Crc32Tables make_tables() {
  Crc32Tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

const Crc32Tables& tables() {
  static const auto t = make_tables();
  return t;
}

inline std::uint32_t fold8(const Crc32Tables& t, std::uint32_t state,
                           const std::uint8_t* p) {
  const std::uint32_t lo = state ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
  return t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
         t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
}

}  // namespace

std::uint32_t crc32_update_scalar(std::uint32_t state, const std::uint8_t* p,
                                  std::size_t n) {
  const auto& t = tables();
  while (n >= 8) {
    state = fold8(t, state, p);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = t[0][(state ^ *p) & 0xFFu] ^ (state >> 8);
    ++p;
    --n;
  }
  return state;
}

std::uint32_t crc32_copy_update_scalar(std::uint32_t state, std::uint8_t* dst,
                                       const std::uint8_t* src, std::size_t n) {
  const auto& t = tables();
  while (n >= 8) {
    std::memcpy(dst, src, 8);  // single 64-bit store
    state = fold8(t, state, src);
    src += 8;
    dst += 8;
    n -= 8;
  }
  while (n > 0) {
    *dst = *src;
    state = t[0][(state ^ *src) & 0xFFu] ^ (state >> 8);
    ++src;
    ++dst;
    --n;
  }
  return state;
}

}  // namespace spcache::simd::detail
