#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "simd/kernels_impl.h"

namespace spcache::simd {

namespace {

struct Registry {
  Kernels tables[3];
  Level detected = Level::kScalar;

  Registry() {
    const Kernels scalar{
        Level::kScalar,
        &detail::gf256_mul_scalar,
        &detail::gf256_mul_add_scalar,
        &detail::gf256_mul_add2_scalar,
        &detail::crc32_update_scalar,
        &detail::crc32_copy_update_scalar,
    };
    tables[0] = scalar;
    tables[1] = scalar;
    tables[2] = scalar;
#if defined(SPCACHE_SIMD_X86)
    const bool has_ssse3 = __builtin_cpu_supports("ssse3");
    const bool has_avx2 = __builtin_cpu_supports("avx2");
    // PCLMUL folding needs SSE4.1 for the final extract; it rides along at
    // the ssse3 tier and above (SPCACHE_SIMD=scalar forces the table CRC).
    const bool has_pclmul =
        __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
    if (has_ssse3) {
      tables[1].level = Level::kSsse3;
      tables[1].gf256_mul = &detail::gf256_mul_ssse3;
      tables[1].gf256_mul_add = &detail::gf256_mul_add_ssse3;
      tables[1].gf256_mul_add2 = &detail::gf256_mul_add2_ssse3;
      if (has_pclmul) {
        tables[1].crc32_update = &detail::crc32_update_pclmul;
        tables[1].crc32_copy_update = &detail::crc32_copy_update_pclmul;
      }
      detected = Level::kSsse3;
    }
    if (has_ssse3 && has_avx2) {
      tables[2] = tables[1];
      tables[2].level = Level::kAvx2;
      tables[2].gf256_mul = &detail::gf256_mul_avx2;
      tables[2].gf256_mul_add = &detail::gf256_mul_add_avx2;
      tables[2].gf256_mul_add2 = &detail::gf256_mul_add2_avx2;
      detected = Level::kAvx2;
    } else {
      tables[2] = tables[1];
    }
#endif
  }
};

const Registry& registry() {
  static const Registry r;
  return r;
}

Level clamp_to_detected(Level level) {
  const Level det = registry().detected;
  return static_cast<int>(level) < static_cast<int>(det) ? level : det;
}

Level env_level() {
  const Level det = registry().detected;
  const char* e = std::getenv("SPCACHE_SIMD");
  if (e == nullptr) return det;
  const std::string_view v(e);
  if (v == "scalar") return Level::kScalar;
  if (v == "ssse3") return clamp_to_detected(Level::kSsse3);
  if (v == "avx2") return clamp_to_detected(Level::kAvx2);
  return det;  // unknown value: keep the detected level
}

std::atomic<const Kernels*>& active_slot() {
  static std::atomic<const Kernels*> slot{
      &registry().tables[static_cast<int>(env_level())]};
  return slot;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSsse3: return "ssse3";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

Level detected_level() { return registry().detected; }

bool level_supported(Level level) {
  return static_cast<int>(level) <= static_cast<int>(registry().detected);
}

Level active_level() { return kernels().level; }

void force_level(Level level) {
  active_slot().store(&kernels_for(level), std::memory_order_release);
}

const Kernels& kernels() {
  return *active_slot().load(std::memory_order_acquire);
}

const Kernels& kernels_for(Level level) {
  return registry().tables[static_cast<int>(clamp_to_detected(level))];
}

}  // namespace spcache::simd
