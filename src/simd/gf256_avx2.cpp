// AVX2 GF(256) slice kernels: the SSSE3 split-nibble scheme widened to 32
// bytes per step by broadcasting the two 16-entry tables into both lanes
// (VPSHUFB shuffles within each 128-bit lane, which is exactly what the
// nibble lookup needs).
#include "simd/kernels_impl.h"

#if defined(SPCACHE_SIMD_X86)

#include <immintrin.h>

namespace spcache::simd::detail {

namespace {

struct NibTables256 {
  __m256i lo;
  __m256i hi;
  __m256i mask;
};

inline NibTables256 load_tables(std::uint8_t c) {
  const auto& t = gf256_tables();
  return NibTables256{
      _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]))),
      _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]))),
      _mm256_set1_epi8(0x0F),
  };
}

inline __m256i mul_vec(const NibTables256& nt, __m256i v) {
  const __m256i lo = _mm256_and_si256(v, nt.mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nt.mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(nt.lo, lo),
                          _mm256_shuffle_epi8(nt.hi, hi));
}

}  // namespace

void gf256_mul_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t c) {
  if (c <= 1 || n < 32) {
    gf256_mul_ssse3(dst, src, n, c);
    return;
  }
  const NibTables256 nt = load_tables(c);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), mul_vec(nt, v0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), mul_vec(nt, v1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), mul_vec(nt, v));
  }
  if (i < n) gf256_mul_ssse3(dst + i, src + i, n - i, c);
}

void gf256_mul_add_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        std::uint8_t c) {
  if (c == 0) return;
  if (c == 1 || n < 32) {
    gf256_mul_add_ssse3(dst, src, n, c);
    return;
  }
  const NibTables256 nt = load_tables(c);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, mul_vec(nt, v0)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, mul_vec(nt, v1)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul_vec(nt, v)));
  }
  if (i < n) gf256_mul_add_ssse3(dst + i, src + i, n - i, c);
}

void gf256_mul_add2_avx2(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                         const std::uint8_t* src1, std::uint8_t c1, std::size_t n) {
  if (n < 32) {
    gf256_mul_add2_ssse3(dst, src0, c0, src1, c1, n);
    return;
  }
  // Both terms fuse for every coefficient (the nibble tables are exact for
  // c == 0 and c == 1), so dst is read and written once for two sources —
  // this is what keeps the cache-blocked RS encode off the store ports.
  const NibTables256 nt0 = load_tables(c0);
  const NibTables256 nt1 = load_tables(c1);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src0 + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src0 + i + 32));
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src1 + i));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src1 + i + 32));
    const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d0, _mm256_xor_si256(mul_vec(nt0, a0), mul_vec(nt1, b0))));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i + 32),
        _mm256_xor_si256(d1, _mm256_xor_si256(mul_vec(nt0, a1), mul_vec(nt1, b1))));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src0 + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src1 + i));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d, _mm256_xor_si256(mul_vec(nt0, a), mul_vec(nt1, b))));
  }
  if (i < n) gf256_mul_add2_ssse3(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

}  // namespace spcache::simd::detail

#endif  // SPCACHE_SIMD_X86
