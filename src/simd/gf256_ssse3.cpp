// SSSE3 GF(256) slice kernels: split-nibble PSHUFB table lookups, 16 bytes
// per step. For a coefficient c the two 16-entry tables cover the low and
// high nibbles; the product of each byte is the xor of the two lookups.
#include "simd/kernels_impl.h"

#if defined(SPCACHE_SIMD_X86)

#include <tmmintrin.h>

namespace spcache::simd::detail {

namespace {

struct NibTables {
  __m128i lo;
  __m128i hi;
  __m128i mask;
};

inline NibTables load_tables(std::uint8_t c) {
  const auto& t = gf256_tables();
  return NibTables{
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c])),
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c])),
      _mm_set1_epi8(0x0F),
  };
}

inline __m128i mul_vec(const NibTables& nt, __m128i v) {
  const __m128i lo = _mm_and_si128(v, nt.mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), nt.mask);
  return _mm_xor_si128(_mm_shuffle_epi8(nt.lo, lo), _mm_shuffle_epi8(nt.hi, hi));
}

}  // namespace

void gf256_mul_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                     std::uint8_t c) {
  if (c <= 1 || n < 16) {
    gf256_mul_scalar(dst, src, n, c);
    return;
  }
  const NibTables nt = load_tables(c);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), mul_vec(nt, v));
  }
  if (i < n) gf256_mul_scalar(dst + i, src + i, n - i, c);
}

void gf256_mul_add_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                         std::uint8_t c) {
  if (c == 0) return;
  if (c == 1 || n < 16) {
    gf256_mul_add_scalar(dst, src, n, c);
    return;
  }
  const NibTables nt = load_tables(c);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul_vec(nt, v)));
  }
  if (i < n) gf256_mul_add_scalar(dst + i, src + i, n - i, c);
}

void gf256_mul_add2_ssse3(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                          const std::uint8_t* src1, std::uint8_t c1, std::size_t n) {
  if (n < 16) {
    gf256_mul_add2_scalar(dst, src0, c0, src1, c1, n);
    return;
  }
  // The nibble tables are exact for every coefficient (all-zero row for
  // c == 0, identity for c == 1), so both terms always fuse.
  const NibTables nt0 = load_tables(c0);
  const NibTables nt1 = load_tables(c1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src0 + i));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src1 + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_xor_si128(d, _mm_xor_si128(mul_vec(nt0, v0), mul_vec(nt1, v1))));
  }
  if (i < n) gf256_mul_add2_scalar(dst + i, src0 + i, c0, src1 + i, c1, n - i);
}

}  // namespace spcache::simd::detail

#endif  // SPCACHE_SIMD_X86
