// Internal declarations shared between the per-ISA kernel translation units
// and the dispatcher. Not part of the public simd API.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spcache::simd::detail {

// Precomputed GF(256) tables over 0x11B, built once at startup and shared by
// every kernel tier. The nibble tables are the PSHUFB operands: for a
// coefficient c and byte v = hi*16 + lo, c*v == nib_lo[c][lo] ^ nib_hi[c][hi]
// because multiplication distributes over GF addition (xor).
struct Gf256Tables {
  std::uint8_t mul[256][256];               // mul[c][v] = c * v
  alignas(16) std::uint8_t nib_lo[256][16];  // nib_lo[c][i] = c * i
  alignas(16) std::uint8_t nib_hi[256][16];  // nib_hi[c][i] = c * (i << 4)
  std::uint8_t exp[512];                     // doubled to skip mod-255
  std::uint8_t log[256];                     // log[0] unused
};
const Gf256Tables& gf256_tables();

// Scalar kernels (no ISA requirements). The vector kernels call these for
// head/tail remainders, so they live in an unflagged translation unit.
void gf256_mul_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                      std::uint8_t c);
void gf256_mul_add_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          std::uint8_t c);
void gf256_mul_add2_scalar(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                           const std::uint8_t* src1, std::uint8_t c1, std::size_t n);
std::uint32_t crc32_update_scalar(std::uint32_t state, const std::uint8_t* p,
                                  std::size_t n);
std::uint32_t crc32_copy_update_scalar(std::uint32_t state, std::uint8_t* dst,
                                       const std::uint8_t* src, std::size_t n);

#if defined(SPCACHE_SIMD_X86)
void gf256_mul_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                     std::uint8_t c);
void gf256_mul_add_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                         std::uint8_t c);
void gf256_mul_add2_ssse3(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                          const std::uint8_t* src1, std::uint8_t c1, std::size_t n);
void gf256_mul_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    std::uint8_t c);
void gf256_mul_add_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        std::uint8_t c);
void gf256_mul_add2_avx2(std::uint8_t* dst, const std::uint8_t* src0, std::uint8_t c0,
                         const std::uint8_t* src1, std::uint8_t c1, std::size_t n);
std::uint32_t crc32_update_pclmul(std::uint32_t state, const std::uint8_t* p,
                                  std::size_t n);
std::uint32_t crc32_copy_update_pclmul(std::uint32_t state, std::uint8_t* dst,
                                       const std::uint8_t* src, std::size_t n);
#endif

}  // namespace spcache::simd::detail
