#include "erasure/matrix.h"

#include <cassert>

#include "erasure/gf256.h"

namespace spcache {

GfMatrix::GfMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::cauchy(std::size_t rows, std::size_t cols) {
  assert(rows + cols <= 256);
  GfMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const auto x = static_cast<std::uint8_t>(i);
      const auto y = static_cast<std::uint8_t>(rows + j);
      m.at(i, j) = gf256::inv(gf256::add(x, y));
    }
  }
  return m;
}

GfMatrix GfMatrix::multiply(const GfMatrix& other) const {
  assert(cols_ == other.rows_);
  GfMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) = gf256::add(out.at(i, j), gf256::mul(a, other.at(k, j)));
      }
    }
  }
  return out;
}

GfMatrix GfMatrix::select_rows(const std::vector<std::size_t>& indices) const {
  GfMatrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    for (std::size_t j = 0; j < cols_; ++j) out.at(i, j) = at(indices[i], j);
  }
  return out;
}

std::optional<GfMatrix> GfMatrix::inverse() const {
  assert(rows_ == cols_);
  const std::size_t n = rows_;
  GfMatrix work = *this;
  GfMatrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;  // singular
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t p = work.at(col, col);
    if (p != 1) {
      const std::uint8_t pinv = gf256::inv(p);
      for (std::size_t j = 0; j < n; ++j) {
        work.at(col, j) = gf256::mul(work.at(col, j), pinv);
        inv.at(col, j) = gf256::mul(inv.at(col, j), pinv);
      }
    }
    // Eliminate the column from all other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(r, j) = gf256::add(work.at(r, j), gf256::mul(factor, work.at(col, j)));
        inv.at(r, j) = gf256::add(inv.at(r, j), gf256::mul(factor, inv.at(col, j)));
      }
    }
  }
  return inv;
}

void GfMatrix::assign_dims(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0);  // reuses capacity once warmed
}

void GfMatrix::select_rows_into(std::span<const std::size_t> indices,
                                GfMatrix& out) const {
  out.assign_dims(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    for (std::size_t j = 0; j < cols_; ++j) out.at(i, j) = at(indices[i], j);
  }
}

bool GfMatrix::invert_into(GfMatrix& inv, GfMatrix& work) const {
  assert(rows_ == cols_);
  const std::size_t n = rows_;
  work.assign_dims(n, n);
  inv.assign_dims(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    inv.at(i, i) = 1;
    for (std::size_t j = 0; j < n; ++j) work.at(i, j) = at(i, j);
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;  // singular
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    const std::uint8_t p = work.at(col, col);
    if (p != 1) {
      const std::uint8_t pinv = gf256::inv(p);
      for (std::size_t j = 0; j < n; ++j) {
        work.at(col, j) = gf256::mul(work.at(col, j), pinv);
        inv.at(col, j) = gf256::mul(inv.at(col, j), pinv);
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(r, j) = gf256::add(work.at(r, j), gf256::mul(factor, work.at(col, j)));
        inv.at(r, j) = gf256::add(inv.at(r, j), gf256::mul(factor, inv.at(col, j)));
      }
    }
  }
  return true;
}

}  // namespace spcache
