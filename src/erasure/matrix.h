// Dense matrices over GF(256), used to build and invert Reed-Solomon
// encoding matrices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace spcache {

class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(std::size_t rows, std::size_t cols);

  static GfMatrix identity(std::size_t n);

  // Cauchy matrix C[i][j] = 1 / (x_i + y_j) with x_i = i and y_j = rows + j
  // (all distinct in GF(256); requires rows + cols <= 256). Every square
  // submatrix of a Cauchy matrix is nonsingular, which makes the systematic
  // code [I ; C] MDS.
  static GfMatrix cauchy(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint8_t at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  std::uint8_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  const std::uint8_t* row(std::size_t r) const { return data_.data() + r * cols_; }

  GfMatrix multiply(const GfMatrix& other) const;

  // Select a subset of rows, in the given order.
  GfMatrix select_rows(const std::vector<std::size_t>& indices) const;

  // Gauss-Jordan inverse; nullopt if singular. Requires a square matrix.
  std::optional<GfMatrix> inverse() const;

  // Allocation-reusing variants for scratch-backed decode: resize into
  // existing capacity instead of constructing fresh matrices.
  void assign_dims(std::size_t rows, std::size_t cols);
  void select_rows_into(std::span<const std::size_t> indices, GfMatrix& out) const;
  // inv = this^-1 using `work` as the elimination workspace; returns false
  // if singular. Both matrices are resized in place (capacity reused).
  bool invert_into(GfMatrix& inv, GfMatrix& work) const;

  bool operator==(const GfMatrix& other) const = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace spcache
