#include "erasure/gf256.h"

#include <array>
#include <cassert>

#include "simd/simd.h"

namespace spcache::gf256 {

namespace {

struct Tables {
  // exp_ is doubled so mul can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint16_t, 256> log_{};

  Tables() {
    // 0x03 (x + 1) generates the multiplicative group for 0x11B.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint16_t>(i);
      // multiply x by the generator 0x03: x*2 ^ x
      std::uint16_t nx = static_cast<std::uint16_t>(x << 1) ^ x;
      if (nx & 0x100) nx ^= kPolynomial;
      x = nx & 0xFF;
    }
    for (int i = 255; i < 512; ++i) {
      exp_[static_cast<std::size_t>(i)] = exp_[static_cast<std::size_t>(i - 255)];
    }
    log_[0] = 0;  // unused; guarded by callers
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + t.log_[b]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + 255 - t.log_[b]];
}

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0);
  const auto& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned log_result = (static_cast<unsigned>(t.log_[a]) * e) % 255;
  return t.exp_[log_result];
}

// The slice kernels are where RS encode/decode spends its time; they
// dispatch to the SIMD layer (PSHUFB/AVX2 split-nibble lookups, or the
// scalar product-row loop at SPCACHE_SIMD=scalar). Coefficient fast paths
// (c == 0, c == 1) and the tiny-slice log/exp path live inside the kernels.
void mul_add_slice(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
                   std::uint8_t c) {
  assert(dst.size() == src.size());
  simd::kernels().gf256_mul_add(dst.data(), src.data(), dst.size(), c);
}

void mul_slice(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src, std::uint8_t c) {
  assert(dst.size() == src.size());
  simd::kernels().gf256_mul(dst.data(), src.data(), dst.size(), c);
}

}  // namespace spcache::gf256
