#include "erasure/rs_code.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "erasure/gf256.h"
#include "simd/simd.h"

namespace spcache {

namespace {

// Cache-blocked parity accumulation. The naive loop ("for each parity row,
// stream every source shard") re-reads each multi-MB source from DRAM once
// per parity row and round-trips each parity shard k times, so encode is
// memory-bound long before the GF kernels saturate. Blocking the shard
// length into cache-sized chunks keeps the chunk of every shard — k
// sources plus n-k parities — resident across the whole accumulation:
// every data byte is read from memory once and every parity byte written
// back once per encode. 32 KiB keeps the working set L2-resident for
// typical (k, n) and measured fastest on the smoke gate's RS(8,11).
constexpr std::size_t kParityBlock = 32 * 1024;

// Accumulate this chunk of every parity shard from sources [0, k).
// Source 0 overwrites (parity buffers may be uninitialized); the rest
// accumulate pairwise through the fused two-source kernel, so each parity
// chunk is read-modify-written ceil((k-1)/2) times instead of k-1.
template <typename SrcAt>
void parity_chunk(const simd::Kernels& kr, const GfMatrix& gen, std::size_t k,
                  std::size_t m, std::size_t off, std::size_t chunk,
                  std::span<const std::span<std::uint8_t>> parity, SrcAt src_at) {
  for (std::size_t p = 0; p < m; ++p) {
    std::uint8_t* dst = parity[p].data() + off;
    kr.gf256_mul(dst, src_at(0) + off, chunk, gen.at(k + p, 0));
    std::size_t j = 1;
    for (; j + 2 <= k; j += 2) {
      kr.gf256_mul_add2(dst, src_at(j) + off, gen.at(k + p, j), src_at(j + 1) + off,
                        gen.at(k + p, j + 1), chunk);
    }
    if (j < k) kr.gf256_mul_add(dst, src_at(j) + off, chunk, gen.at(k + p, j));
  }
}

template <typename SrcAt>
void blocked_parity(const GfMatrix& gen, std::size_t k, std::size_t len,
                    std::span<const std::span<std::uint8_t>> parity, SrcAt src_at) {
  const auto& kr = simd::kernels();
  const std::size_t m = parity.size();
  for (std::size_t off = 0; off < len; off += kParityBlock) {
    const std::size_t chunk = std::min(kParityBlock, len - off);
    parity_chunk(kr, gen, k, m, off, chunk, parity, src_at);
  }
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t k, std::size_t n) : k_(k), n_(n), generator_(n, k) {
  if (k < 1 || n < k || n > 256) {
    throw std::invalid_argument("ReedSolomon: require 1 <= k <= n <= 256");
  }
  const GfMatrix parity = GfMatrix::cauchy(n - k, k);
  for (std::size_t i = 0; i < k; ++i) generator_.at(i, i) = 1;
  for (std::size_t i = 0; i < n - k; ++i) {
    for (std::size_t j = 0; j < k; ++j) generator_.at(k + i, j) = parity.at(i, j);
  }
}

void ReedSolomon::encode_into(std::span<const std::uint8_t> data,
                              std::span<const std::span<std::uint8_t>> shards) const {
  if (shards.size() != n_) throw std::invalid_argument("encode_into: need exactly n shard buffers");
  const std::size_t len = shard_size(data.size());
  for (const auto& s : shards) {
    if (s.size() != len) throw std::invalid_argument("encode_into: shard buffer length mismatch");
  }
  // Fused copy + parity, blocked on the shard length: each chunk of a data
  // shard is copied from the source file (tail zero-padded) and — while
  // still cache-hot — accumulated into every parity chunk. One DRAM read
  // per data byte, one write per shard byte, for the whole encode.
  const auto& kr = simd::kernels();
  const std::size_t m = n_ - k_;
  const auto parity = shards.subspan(k_);
  for (std::size_t off = 0; off < len; off += kParityBlock) {
    const std::size_t chunk = std::min(kParityBlock, len - off);
    for (std::size_t j = 0; j < k_; ++j) {
      const std::size_t offset = j * len + off;
      const std::size_t count =
          offset < data.size() ? std::min(chunk, data.size() - offset) : 0;
      if (count > 0) std::memcpy(shards[j].data() + off, data.data() + offset, count);
      if (count < chunk) std::memset(shards[j].data() + off + count, 0, chunk - count);
    }
    if (m > 0) {
      parity_chunk(kr, generator_, k_, m, off, chunk, parity,
                   [&](std::size_t j) { return shards[j].data(); });
    }
  }
}

std::vector<Shard> ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  const std::size_t len = shard_size(data.size());
  std::vector<Shard> shards(n_);
  std::vector<std::span<std::uint8_t>> views(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    shards[i].index = i;
    shards[i].bytes.resize(len);
    views[i] = shards[i].bytes;
  }
  encode_into(data, views);
  return shards;
}

void ReedSolomon::encode_parity_into(
    std::span<const std::span<const std::uint8_t>> data,
    std::span<const std::span<std::uint8_t>> parity) const {
  if (data.size() != k_) throw std::invalid_argument("encode_parity: need exactly k data shards");
  if (parity.size() != n_ - k_) {
    throw std::invalid_argument("encode_parity: need exactly n-k parity buffers");
  }
  const std::size_t len = data.front().size();
  for (const auto& d : data) {
    if (d.size() != len) throw std::invalid_argument("encode_parity: shard length mismatch");
  }
  for (const auto& p : parity) {
    if (p.size() != len) throw std::invalid_argument("encode_parity: parity length mismatch");
  }
  blocked_parity(generator_, k_, len, parity,
                 [&](std::size_t j) { return data[j].data(); });
}

std::vector<Shard> ReedSolomon::encode_parity(
    const std::vector<std::span<const std::uint8_t>>& data) const {
  if (data.size() != k_) throw std::invalid_argument("encode_parity: need exactly k data shards");
  const std::size_t len = data.front().size();
  std::vector<Shard> parity(n_ - k_);
  std::vector<std::span<std::uint8_t>> views(n_ - k_);
  for (std::size_t p = 0; p < n_ - k_; ++p) {
    parity[p].index = k_ + p;
    parity[p].bytes.resize(len);
    views[p] = parity[p].bytes;
  }
  encode_parity_into(std::span<const std::span<const std::uint8_t>>(data), views);
  return parity;
}

void ReedSolomon::decode_into(std::span<const ShardView> shards,
                              std::size_t original_size,
                              std::span<std::uint8_t> out,
                              RsScratch& scratch) const {
  if (out.size() != original_size) {
    throw std::invalid_argument("decode_into: output span must be original_size bytes");
  }
  if (shards.size() < k_) throw std::invalid_argument("decode: need at least k shards");
  const std::size_t len = shard_size(original_size);

  // Validate every supplied shard before touching any of them.
  scratch.seen.assign(n_, 0);
  for (const auto& s : shards) {
    if (s.index >= n_) throw std::invalid_argument("decode: shard index out of range");
    if (s.bytes.size() != len) throw std::invalid_argument("decode: shard length mismatch");
    if (scratch.seen[s.index]) throw std::invalid_argument("decode: duplicate shard index");
    scratch.seen[s.index] = 1;
  }

  // Pick the first k shards, preferring data shards (cheap path).
  auto& chosen = scratch.chosen;
  chosen.clear();
  for (const auto& s : shards) {
    if (chosen.size() == k_) break;
    if (s.index < k_) chosen.push_back(&s);
  }
  for (const auto& s : shards) {
    if (chosen.size() == k_) break;
    if (s.index >= k_) chosen.push_back(&s);
  }
  if (chosen.size() < k_) throw std::invalid_argument("decode: need k distinct shards");

  const bool all_data = std::all_of(chosen.begin(), chosen.end(),
                                    [this](const ShardView* s) { return s->index < k_; });
  if (all_data) {
    // Systematic fast path: copy each data shard's live prefix into place.
    for (const ShardView* s : chosen) {
      const std::size_t offset = s->index * len;
      if (offset >= original_size) continue;
      const std::size_t want = std::min(len, original_size - offset);
      std::memcpy(out.data() + offset, s->bytes.data(), want);
    }
    return;
  }

  // Invert the k x k submatrix of the generator given by the chosen rows.
  auto& rows = scratch.rows;
  rows.clear();
  for (const ShardView* s : chosen) rows.push_back(s->index);
  generator_.select_rows_into(rows, scratch.sub);
  const bool ok = scratch.sub.invert_into(scratch.inv, scratch.work);
  assert(ok && "Cauchy construction guarantees invertibility");
  if (!ok) throw std::invalid_argument("decode: singular submatrix");

  // data_j = sum_i inv[j][i] * chosen_i, written straight into the output
  // where the shard lands wholly inside it; the truncated tail shard goes
  // through the staging buffer, and shards entirely inside the stripped
  // padding are skipped outright.
  for (std::size_t j = 0; j < k_; ++j) {
    const std::size_t offset = j * len;
    if (offset >= original_size) break;
    const std::size_t want = std::min(len, original_size - offset);
    std::span<std::uint8_t> dst;
    if (want == len) {
      dst = out.subspan(offset, len);
    } else {
      scratch.stage.resize(len);
      dst = scratch.stage;
    }
    gf256::mul_slice(dst, chosen[0]->bytes, scratch.inv.at(j, 0));
    for (std::size_t i = 1; i < k_; ++i) {
      gf256::mul_add_slice(dst, chosen[i]->bytes, scratch.inv.at(j, i));
    }
    if (want != len) {
      std::memcpy(out.data() + offset, scratch.stage.data(), want);
    }
  }
}

std::vector<std::uint8_t> ReedSolomon::decode(const std::vector<Shard>& shards,
                                              std::size_t original_size) const {
  std::vector<ShardView> views;
  views.reserve(shards.size());
  for (const auto& s : shards) views.push_back({s.index, s.bytes});
  std::vector<std::uint8_t> out(original_size);
  RsScratch scratch;
  decode_into(views, original_size, out, scratch);
  return out;
}

std::vector<std::vector<std::uint8_t>> split_plain(std::span<const std::uint8_t> data,
                                                   std::size_t k) {
  assert(k >= 1);
  // reserve + emplace from the slice: each piece's bytes are written exactly
  // once by the range constructor (no value-initialized resize).
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(k);
  const std::size_t base = data.size() / k;
  const std::size_t extra = data.size() % k;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(offset),
                     data.begin() + static_cast<std::ptrdiff_t>(offset + len));
    offset += len;
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> split_sized(std::span<const std::uint8_t> data,
                                                   const std::vector<Bytes>& sizes) {
  Bytes total = 0;
  for (Bytes s : sizes) total += s;
  if (total != data.size()) {
    throw std::invalid_argument("split_sized: piece sizes must sum to the data size");
  }
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(sizes.size());
  std::size_t offset = 0;
  for (Bytes s : sizes) {
    out.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(offset),
                     data.begin() + static_cast<std::ptrdiff_t>(offset + s));
    offset += s;
  }
  return out;
}

void split_plain_views(std::span<const std::uint8_t> data, std::size_t k,
                       std::span<std::span<const std::uint8_t>> out) {
  assert(k >= 1 && out.size() == k);
  const std::size_t base = data.size() / k;
  const std::size_t extra = data.size() % k;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out[i] = data.subspan(offset, len);
    offset += len;
  }
}

void split_sized_views(std::span<const std::uint8_t> data,
                       std::span<const Bytes> sizes,
                       std::span<std::span<const std::uint8_t>> out) {
  assert(out.size() == sizes.size());
  Bytes total = 0;
  for (Bytes s : sizes) total += s;
  if (total != data.size()) {
    throw std::invalid_argument("split_sized: piece sizes must sum to the data size");
  }
  std::size_t offset = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    out[i] = data.subspan(offset, sizes[i]);
    offset += sizes[i];
  }
}

std::vector<std::uint8_t> join_plain(const std::vector<std::vector<std::uint8_t>>& pieces) {
  std::size_t total = 0;
  for (const auto& p : pieces) total += p.size();
  std::vector<std::uint8_t> out;
  out.reserve(total);
  for (const auto& p : pieces) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void join_into(std::span<const std::span<const std::uint8_t>> pieces,
               std::span<std::uint8_t> out) {
  std::size_t total = 0;
  for (const auto& p : pieces) total += p.size();
  if (total != out.size()) {
    throw std::invalid_argument("join_into: piece sizes must sum to the output size");
  }
  std::size_t offset = 0;
  for (const auto& p : pieces) {
    std::memcpy(out.data() + offset, p.data(), p.size());
    offset += p.size();
  }
}

}  // namespace spcache
