#include "erasure/rs_code.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "erasure/gf256.h"

namespace spcache {

ReedSolomon::ReedSolomon(std::size_t k, std::size_t n) : k_(k), n_(n), generator_(n, k) {
  if (k < 1 || n < k || n > 256) {
    throw std::invalid_argument("ReedSolomon: require 1 <= k <= n <= 256");
  }
  const GfMatrix parity = GfMatrix::cauchy(n - k, k);
  for (std::size_t i = 0; i < k; ++i) generator_.at(i, i) = 1;
  for (std::size_t i = 0; i < n - k; ++i) {
    for (std::size_t j = 0; j < k; ++j) generator_.at(k + i, j) = parity.at(i, j);
  }
}

std::vector<Shard> ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  const std::size_t len = shard_size(data.size());
  std::vector<Shard> shards(n_);
  // Data shards: contiguous slices, zero-padded at the end.
  for (std::size_t i = 0; i < k_; ++i) {
    shards[i].index = i;
    shards[i].bytes.assign(len, 0);
    const std::size_t offset = i * len;
    if (offset < data.size()) {
      const std::size_t count = std::min(len, data.size() - offset);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(offset), count,
                  shards[i].bytes.begin());
    }
  }
  // Parity shards.
  for (std::size_t p = 0; p < n_ - k_; ++p) {
    auto& shard = shards[k_ + p];
    shard.index = k_ + p;
    shard.bytes.assign(len, 0);
    for (std::size_t j = 0; j < k_; ++j) {
      gf256::mul_add_slice(shard.bytes, shards[j].bytes, generator_.at(k_ + p, j));
    }
  }
  return shards;
}

std::vector<Shard> ReedSolomon::encode_parity(
    const std::vector<std::span<const std::uint8_t>>& data) const {
  if (data.size() != k_) throw std::invalid_argument("encode_parity: need exactly k data shards");
  const std::size_t len = data.front().size();
  for (const auto& d : data) {
    if (d.size() != len) throw std::invalid_argument("encode_parity: shard length mismatch");
  }
  std::vector<Shard> parity(n_ - k_);
  for (std::size_t p = 0; p < n_ - k_; ++p) {
    parity[p].index = k_ + p;
    parity[p].bytes.assign(len, 0);
    for (std::size_t j = 0; j < k_; ++j) {
      gf256::mul_add_slice(parity[p].bytes, data[j], generator_.at(k_ + p, j));
    }
  }
  return parity;
}

std::vector<std::uint8_t> ReedSolomon::decode(const std::vector<Shard>& shards,
                                              std::size_t original_size) const {
  if (shards.size() < k_) throw std::invalid_argument("decode: need at least k shards");
  const std::size_t len = shard_size(original_size);

  // Validate every supplied shard before touching any of them.
  std::vector<bool> seen(n_, false);
  for (const auto& s : shards) {
    if (s.index >= n_) throw std::invalid_argument("decode: shard index out of range");
    if (s.bytes.size() != len) throw std::invalid_argument("decode: shard length mismatch");
    if (seen[s.index]) throw std::invalid_argument("decode: duplicate shard index");
    seen[s.index] = true;
  }

  // Pick the first k shards, preferring data shards (cheap path).
  std::vector<const Shard*> chosen;
  for (const auto& s : shards) {
    if (chosen.size() == k_) break;
    if (s.index < k_) chosen.push_back(&s);
  }
  for (const auto& s : shards) {
    if (chosen.size() == k_) break;
    if (s.index >= k_) chosen.push_back(&s);
  }
  if (chosen.size() < k_) throw std::invalid_argument("decode: need k distinct shards");

  // Fast path: all k data shards present — concatenate.
  const bool all_data = std::all_of(chosen.begin(), chosen.end(),
                                    [this](const Shard* s) { return s->index < k_; });
  std::vector<std::vector<std::uint8_t>> data_shards(k_);
  if (all_data) {
    for (const Shard* s : chosen) data_shards[s->index] = s->bytes;
  } else {
    // Invert the k x k submatrix of the generator given by the chosen rows.
    std::vector<std::size_t> rows;
    rows.reserve(k_);
    for (const Shard* s : chosen) rows.push_back(s->index);
    const auto inv = generator_.select_rows(rows).inverse();
    assert(inv.has_value() && "Cauchy construction guarantees invertibility");
    // data_j = sum_i inv[j][i] * chosen_i
    for (std::size_t j = 0; j < k_; ++j) {
      data_shards[j].assign(len, 0);
      for (std::size_t i = 0; i < k_; ++i) {
        gf256::mul_add_slice(data_shards[j], chosen[i]->bytes, inv->at(j, i));
      }
    }
  }

  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  for (std::size_t j = 0; j < k_ && out.size() < original_size; ++j) {
    const std::size_t want = std::min(len, original_size - out.size());
    out.insert(out.end(), data_shards[j].begin(),
               data_shards[j].begin() + static_cast<std::ptrdiff_t>(want));
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> split_plain(std::span<const std::uint8_t> data,
                                                   std::size_t k) {
  assert(k >= 1);
  std::vector<std::vector<std::uint8_t>> out(k);
  const std::size_t base = data.size() / k;
  const std::size_t extra = data.size() % k;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    out[i].assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                  data.begin() + static_cast<std::ptrdiff_t>(offset + len));
    offset += len;
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> split_sized(std::span<const std::uint8_t> data,
                                                   const std::vector<Bytes>& sizes) {
  Bytes total = 0;
  for (Bytes s : sizes) total += s;
  if (total != data.size()) {
    throw std::invalid_argument("split_sized: piece sizes must sum to the data size");
  }
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(sizes.size());
  std::size_t offset = 0;
  for (Bytes s : sizes) {
    out.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(offset),
                     data.begin() + static_cast<std::ptrdiff_t>(offset + s));
    offset += s;
  }
  return out;
}

std::vector<std::uint8_t> join_plain(const std::vector<std::vector<std::uint8_t>>& pieces) {
  std::size_t total = 0;
  for (const auto& p : pieces) total += p.size();
  std::vector<std::uint8_t> out;
  out.reserve(total);
  for (const auto& p : pieces) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace spcache
