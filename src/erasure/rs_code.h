// Systematic (k, n) Reed-Solomon erasure code.
//
// EC-Cache (Section 3.2) splits a file into k data partitions and derives
// n - k parity partitions such that any k of the n reconstruct the file.
// We implement the systematic Cauchy construction: the n x k generator is
// [I_k ; C] with C a Cauchy matrix, so data shards are stored verbatim and
// any k rows of the generator are invertible (MDS property).
//
// Shard layout: a file of `size` bytes is zero-padded to a multiple of k
// and split row-wise into k equal data shards. decode() strips the padding
// back off using the original size recorded by the caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "erasure/matrix.h"

namespace spcache {

struct Shard {
  std::size_t index = 0;  // 0..n-1; < k means a data shard
  std::vector<std::uint8_t> bytes;
};

// Non-owning shard reference for the span-based decode path: lets callers
// decode straight out of cached blocks without copying shard bytes first.
struct ShardView {
  std::size_t index = 0;
  std::span<const std::uint8_t> bytes;
};

// Reusable decode workspace. All members are resized in place, so a warmed
// scratch makes repeated decodes of same-shaped files allocation-free.
struct RsScratch {
  GfMatrix sub, inv, work;
  std::vector<std::size_t> rows;
  std::vector<const ShardView*> chosen;
  std::vector<std::uint8_t> seen;
  std::vector<std::uint8_t> stage;  // staging for the truncated tail shard
};

class ReedSolomon {
 public:
  // Requires 1 <= k <= n <= 256.
  ReedSolomon(std::size_t k, std::size_t n);

  std::size_t data_shards() const { return k_; }
  std::size_t total_shards() const { return n_; }
  std::size_t parity_shards() const { return n_ - k_; }

  // Memory overhead of the code, (n - k) / k (Section 3.2).
  double memory_overhead() const {
    return static_cast<double>(n_ - k_) / static_cast<double>(k_);
  }

  // Shard byte length for a file of `size` bytes: ceil(size / k).
  std::size_t shard_size(std::size_t size) const { return (size + k_ - 1) / k_; }

  // Encode a file into n shards (first k are the zero-padded data).
  std::vector<Shard> encode(std::span<const std::uint8_t> data) const;

  // Span-based encode: writes all n shards into caller-provided buffers
  // (each exactly shard_size(data.size()) bytes; arena- or pool-backed on
  // the hot path). Buffers need no zero-initialization — every byte is
  // written exactly once, including the zero padding of the data tail.
  void encode_into(std::span<const std::uint8_t> data,
                   std::span<const std::span<std::uint8_t>> shards) const;

  // Compute only the parity shards for pre-split data shards (all the same
  // length). Used by the cluster write path, which splits first.
  std::vector<Shard> encode_parity(
      const std::vector<std::span<const std::uint8_t>>& data) const;

  // Span-based parity: writes the n-k parity shards into caller-provided
  // buffers of the data-shard length (no zero-init required).
  void encode_parity_into(std::span<const std::span<const std::uint8_t>> data,
                          std::span<const std::span<std::uint8_t>> parity) const;

  // Reconstruct the original file from any >= k distinct shards.
  // `original_size` removes the padding. Throws std::invalid_argument on
  // fewer than k shards, duplicate/out-of-range indices, or mismatched
  // shard lengths.
  std::vector<std::uint8_t> decode(const std::vector<Shard>& shards,
                                   std::size_t original_size) const;

  // Span-based decode: reconstructs into `out` (exactly original_size
  // bytes) from non-owning shard views, reusing `scratch` for the inverted
  // submatrix and tail staging. Shards whose bytes land entirely in the
  // stripped padding are never computed. Same validation/throws as decode().
  void decode_into(std::span<const ShardView> shards, std::size_t original_size,
                   std::span<std::uint8_t> out, RsScratch& scratch) const;

  const GfMatrix& generator() const { return generator_; }

 private:
  std::size_t k_, n_;
  GfMatrix generator_;  // n x k: [I ; Cauchy]
};

// Plain splitting used by SP-Cache and fixed-size chunking: divide `data`
// into `k` near-equal contiguous pieces (no padding; the last piece may be
// shorter). Reassembly is concatenation.
std::vector<std::vector<std::uint8_t>> split_plain(std::span<const std::uint8_t> data,
                                                   std::size_t k);

// Split into contiguous pieces of the exact given sizes (must sum to
// data.size(); throws std::invalid_argument otherwise). Used by the
// heterogeneous extension, whose piece sizes follow server bandwidths.
std::vector<std::vector<std::uint8_t>> split_sized(std::span<const std::uint8_t> data,
                                                   const std::vector<Bytes>& sizes);

std::vector<std::uint8_t> join_plain(const std::vector<std::vector<std::uint8_t>>& pieces);

// View-based splitting for the zero-copy write path: pieces are contiguous
// slices *into* `data` (no bytes move). `out` must hold k (resp.
// sizes.size()) entries. split_sized_views throws if sizes don't sum to
// data.size(), mirroring split_sized.
void split_plain_views(std::span<const std::uint8_t> data, std::size_t k,
                       std::span<std::span<const std::uint8_t>> out);
void split_sized_views(std::span<const std::uint8_t> data,
                       std::span<const Bytes> sizes,
                       std::span<std::span<const std::uint8_t>> out);

// Concatenate pieces into a caller-provided buffer (piece sizes must sum to
// out.size(); throws std::invalid_argument otherwise).
void join_into(std::span<const std::span<const std::uint8_t>> pieces,
               std::span<std::uint8_t> out);

}  // namespace spcache
