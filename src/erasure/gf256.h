// GF(2^8) arithmetic for Reed-Solomon coding.
//
// The EC-Cache baseline (Section 3.2) uses a (k, n) Reed-Solomon code over
// GF(256) — the same field as Intel ISA-L, which the paper's EC-Cache
// implementation builds on. Field elements are bytes; addition is XOR and
// multiplication is carried out through log/antilog tables over the AES
// polynomial x^8 + x^4 + x^3 + x + 1 (0x11B).
#pragma once

#include <cstdint>
#include <span>

namespace spcache::gf256 {

inline constexpr std::uint16_t kPolynomial = 0x11B;

// Addition and subtraction coincide in characteristic 2.
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
constexpr std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

// Table-based multiply/divide/inverse. div(a, 0) and inv(0) are undefined
// (assert in debug builds).
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t div(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);

// a^e with exponentiation in the multiplicative group (0^0 == 1).
std::uint8_t pow(std::uint8_t a, unsigned e);

// Bulk shard operations used by the RS encoder/decoder:
//   dst[i] ^= c * src[i]   (multiply-accumulate over a byte slice)
void mul_add_slice(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
                   std::uint8_t c);
//   dst[i] = c * src[i]
void mul_slice(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src, std::uint8_t c);

}  // namespace spcache::gf256
