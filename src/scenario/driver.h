// Scenario driver: replays an adversarial ScenarioScript against the
// threaded cluster and reports per-phase health.
//
// The driver is the harness that turns the script into real traffic:
//
//   * it lays the cluster out with an offline Algorithm 1 run on phase 0's
//     catalog (the "yesterday's re-balance" baseline every phase then
//     stresses), writes every file through SpClient and checkpoints it to
//     stable storage;
//   * each phase's arrivals come from the existing Poisson/MMPP
//     generators against the phase catalog; every read is verified
//     bit-exact against the original bytes; modelled (virtual-time)
//     latency — optionally straggler-inflated — lands in a per-phase
//     histogram;
//   * scripted faults ride the FaultInjector crash list: explicit events,
//     plus the correlated-failure resolver that kills ceil(N/3) of the
//     hot file's current holders and later runs
//     RecoveryManager::repair_after_server_loss under live traffic;
//   * with `adaptive` on, an AlphaController observes the cluster's
//     served-bytes deltas every `controller_every` requests and closes
//     the observe -> decide -> act loop; with it off, alpha stays frozen
//     at the offline value — the control arm the bench compares against.
//
// Determinism: all timing is virtual (arrival timestamps; modelled
// latencies), per-phase RNG streams are derived from the script seed, and
// with threads = 1 the full TraceRecorder sequence is a pure function of
// (script, config) — the replay test pins two runs to same_shape
// equality.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/alpha_controller.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/script.h"

namespace spcache::scenario {

struct ScenarioDriverConfig {
  std::size_t n_servers = 10;
  Bandwidth bandwidth = gbps(1.0);
  // Piece-fetch pool width. 1 (the default) makes the trace sequence
  // deterministic; benches may widen it for wall-clock throughput.
  std::size_t threads = 1;
  // false = frozen-alpha control arm: no controller, no split/merge.
  bool adaptive = true;
  AlphaControllerConfig controller;
  // observe() cadence, in requests.
  std::size_t controller_every = 16;
  Seconds tracker_half_life = 5.0;

  ScenarioDriverConfig() {
    // Scenario phases run seconds of virtual time, not the 12-hour epochs
    // of the offline path — tighten the loop accordingly.
    controller.eta_trigger = 0.8;
    controller.cooldown = 1.0;
    controller.max_ops_per_file = 8;
  }
};

struct PhaseReport {
  std::string name;
  std::size_t requests = 0;
  std::size_t failures = 0;    // reads that exhausted the retry budget
  std::size_t mismatches = 0;  // reads returning wrong bytes (must be 0)

  double eta = 0.0;  // Eq. 15 over this phase's served-bytes delta
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  obs::HistogramSnapshot latency;  // modelled, straggler-inflated

  std::size_t retries = 0;
  std::size_t degraded_reads = 0;
  std::size_t degraded_pieces = 0;

  // Controller activity within the phase (zero when frozen).
  std::size_t triggers = 0;
  std::size_t adaptations = 0;
  std::size_t splits = 0;
  std::size_t merges = 0;
  Bytes bytes_moved = 0;
  double alpha_end = 0.0;

  // Scripted fault activity.
  std::size_t kills = 0;
  std::size_t revives = 0;
  std::size_t repairs = 0;

  // The phase's hottest file and its partition count at phase start/end —
  // the flash-crowd test asserts end > start under the adaptive controller.
  FileId hot_file = 0;
  std::size_t hot_partitions_start = 0;
  std::size_t hot_partitions_end = 0;
};

struct ScenarioReport {
  std::string scenario;
  bool adaptive = false;
  double initial_alpha = 0.0;
  std::vector<PhaseReport> phases;

  double worst_eta() const;
  double worst_p99_ms() const;
  std::size_t total_failures() const;
  std::size_t total_mismatches() const;
};

class ScenarioDriver {
 public:
  ScenarioDriver(ScenarioScript script, ScenarioDriverConfig config = {});

  // Run the whole script. `registry`/`trace` are optional sinks: the
  // cluster, client, stable store, and controller attach to them when
  // given, and the driver marks each phase boundary with a
  // kScenarioPhase trace event.
  ScenarioReport run(obs::MetricsRegistry* registry = nullptr,
                     obs::TraceRecorder* trace = nullptr);

 private:
  ScenarioScript script_;
  ScenarioDriverConfig config_;
};

}  // namespace spcache::scenario
