#include "scenario/script.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spcache::scenario {

Catalog phase_catalog(const ScenarioScript& script, const PhaseSpec& spec) {
  const std::size_t n = script.n_files;
  assert(n > 0);

  // Tenant A: Zipf(s) over rank (i + rotate) % n.
  std::vector<double> weights(n, 0.0);
  double sum_a = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rank = (i + spec.rotate_ranks) % n;
    weights[i] = std::pow(static_cast<double>(rank + 1), -spec.zipf_exponent);
    sum_a += weights[i];
  }
  for (double& w : weights) w /= sum_a;

  // Tenant B: Zipf over the reversed id order, blended in by share.
  if (spec.tenant_b_share > 0.0) {
    std::vector<double> b(n, 0.0);
    double sum_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = std::pow(static_cast<double>(n - i), -spec.tenant_b_exponent);
      sum_b += b[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = (1.0 - spec.tenant_b_share) * weights[i] +
                   spec.tenant_b_share * (b[i] / sum_b);
    }
  }

  // Flash crowd last: the flash file takes its share outright, the rest
  // keep their relative proportions in what remains.
  if (spec.has_flash && spec.flash_file < n) {
    for (double& w : weights) w *= (1.0 - spec.flash_share);
    weights[spec.flash_file] += spec.flash_share;
  }

  std::vector<FileInfo> files(n);
  for (std::size_t i = 0; i < n; ++i) {
    files[i].id = static_cast<FileId>(i);
    files[i].size = script.file_size;
    files[i].request_rate = weights[i] * spec.total_rate;
  }
  return Catalog(std::move(files));
}

FileId phase_hot_file(const ScenarioScript& script, const PhaseSpec& spec) {
  if (spec.has_flash && spec.flash_file < script.n_files) return spec.flash_file;
  const Catalog catalog = phase_catalog(script, spec);
  FileId hot = 0;
  for (FileId i = 1; i < catalog.size(); ++i) {
    if (catalog.file(i).request_rate > catalog.file(hot).request_rate) hot = i;
  }
  return hot;
}

ScenarioScript make_drift_scenario() {
  ScenarioScript s;
  s.name = "drift";
  s.seed = 101;
  // Four "times of day": the popularity ranks rotate a quarter turn each
  // phase, so every phase's hottest files were mid-pack in the last one.
  const char* names[] = {"night", "morning", "midday", "evening"};
  for (std::size_t p = 0; p < 4; ++p) {
    PhaseSpec phase;
    phase.name = names[p];
    phase.requests = 400;
    phase.rotate_ranks = p * (s.n_files / 4);
    s.phases.push_back(phase);
  }
  return s;
}

ScenarioScript make_flash_crowd_scenario() {
  ScenarioScript s;
  s.name = "flash";
  s.seed = 202;
  const FileId cold = static_cast<FileId>(s.n_files - 1);
  PhaseSpec steady;
  steady.name = "steady";
  steady.requests = 300;
  s.phases.push_back(steady);

  PhaseSpec flash;
  flash.name = "flash";
  flash.requests = 500;
  flash.has_flash = true;
  flash.flash_file = cold;   // the coldest file goes viral
  flash.flash_share = 0.6;
  flash.arrivals = ArrivalKind::kMmpp;  // viral traffic arrives in bursts
  flash.mmpp.calm_rate = 30.0;
  flash.mmpp.burst_rate = 150.0;
  flash.mmpp.mean_calm_time = 4.0;
  flash.mmpp.mean_burst_time = 1.0;
  s.phases.push_back(flash);

  PhaseSpec decay;
  decay.name = "decay";
  decay.requests = 300;
  decay.has_flash = true;
  decay.flash_file = cold;
  decay.flash_share = 0.15;  // the crowd thins but does not vanish
  s.phases.push_back(decay);
  return s;
}

ScenarioScript make_correlated_failure_scenario(std::size_t n_servers) {
  (void)n_servers;  // the driver resolves ceil(N/3) against its cluster
  ScenarioScript s;
  s.name = "correlated-failure";
  s.seed = 303;
  PhaseSpec steady;
  steady.name = "steady";
  steady.requests = 300;
  s.phases.push_back(steady);

  // A rack loss under straggler pressure: ceil(N/3) of the hot file's
  // holders die at request 60; repair runs at request 240 while traffic
  // continues; every read in between must degrade to stable bit-exactly.
  PhaseSpec failure;
  failure.name = "rack-loss";
  failure.requests = 500;
  failure.straggler_p = 0.05;
  failure.kill_hot_holders = true;
  failure.kill_at = 60;
  failure.repair_at = 240;
  s.phases.push_back(failure);

  PhaseSpec recovered;
  recovered.name = "recovered";
  recovered.requests = 300;
  s.phases.push_back(recovered);
  return s;
}

ScenarioScript make_multi_tenant_scenario() {
  ScenarioScript s;
  s.name = "multi-tenant";
  s.seed = 404;
  PhaseSpec solo;
  solo.name = "tenant-a";
  solo.requests = 300;
  s.phases.push_back(solo);

  PhaseSpec contention;
  contention.name = "contention";
  contention.requests = 400;
  contention.tenant_b_share = 0.5;  // B's hot files are A's cold files
  s.phases.push_back(contention);

  PhaseSpec flipped;
  flipped.name = "b-dominates";
  flipped.requests = 400;
  flipped.tenant_b_share = 0.85;
  flipped.tenant_b_exponent = 1.3;  // and B is more skewed than A
  s.phases.push_back(flipped);
  return s;
}

std::vector<ScenarioScript> all_scenarios(std::size_t n_servers) {
  return {make_drift_scenario(), make_flash_crowd_scenario(),
          make_correlated_failure_scenario(n_servers), make_multi_tenant_scenario()};
}

}  // namespace spcache::scenario
