// Adversarial scenario scripts: deterministic, phased workload
// descriptions the driver replays against the threaded cluster.
//
// Production traffic breaks the benign Zipf+Poisson assumptions of the
// paper's evaluation in four recurring ways, each of which is one canned
// scenario here:
//
//   drift       diurnal popularity rotation — the rank order of files
//               shifts phase by phase (night/morning/midday/evening), so
//               yesterday's layout is always slightly wrong;
//   flash       a cold file becomes the hottest key within one phase
//               (then decays), the case Section 8's online split exists
//               for;
//   correlated  ceil(N/3) servers holding pieces of the same hot file die
//               together mid-phase (a rack loss), reads must degrade to
//               stable storage bit-exactly until a scripted repair;
//   multi-tenant two tenants with *reversed* popularity ranks share the
//               cluster, and tenant B's share ramps up — every file is
//               somebody's hot file.
//
// A script is pure data: phases compose the existing workload generators
// (Zipf catalogs, Poisson/MMPP arrivals, the Bing straggler profile, the
// FaultInjector crash list). Everything is derived deterministically from
// the script's seed — same script + seed replays to an identical trace
// (the scenario-driver test pins this via TraceEvent::same_shape).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "fault/fault_injector.h"
#include "workload/arrivals.h"
#include "workload/file_catalog.h"

namespace spcache::scenario {

enum class ArrivalKind : std::uint8_t { kPoisson, kMmpp };

// One phase: a popularity shape + an arrival process + optional faults.
// Request indices (`at_step`, `kill_at`, `repair_at`) count requests
// *within this phase*, starting at 0.
struct PhaseSpec {
  std::string name;
  std::size_t requests = 400;

  // Popularity shape. The base is Zipf(zipf_exponent) in id order (file 0
  // hottest), optionally rotated by `rotate_ranks` positions (diurnal
  // drift: file i inherits rank (i + rotate_ranks) % n).
  double zipf_exponent = 1.05;
  double total_rate = 50.0;  // aggregate requests/second
  std::size_t rotate_ranks = 0;

  // Flash crowd: `flash_file` absorbs `flash_share` of the total rate; the
  // remaining files keep their relative proportions in the rest.
  bool has_flash = false;
  FileId flash_file = 0;
  double flash_share = 0.6;

  // Multi-tenant interference: tenant B contributes `tenant_b_share` of
  // the traffic with its own Zipf(tenant_b_exponent) over the REVERSED id
  // order — B's hottest file is A's coldest.
  double tenant_b_share = 0.0;
  double tenant_b_exponent = 1.1;

  ArrivalKind arrivals = ArrivalKind::kPoisson;
  MmppParams mmpp;  // used iff arrivals == kMmpp

  // Per-read straggler probability (Bing profile); 0 disables.
  double straggler_p = 0.0;

  // Explicit scripted server lifecycle events (at_step = request index).
  std::vector<fault::CrashEvent> events;

  // Correlated failure: at request `kill_at`, kill ceil(N/3) of the
  // servers currently holding pieces of the phase's hottest file (resolved
  // against the live layout at that moment). A nonzero `repair_at` runs
  // RecoveryManager::repair_after_server_loss for every dead server at
  // that request index. All killed servers are revived at phase end.
  bool kill_hot_holders = false;
  std::size_t kill_at = 0;
  std::size_t repair_at = 0;
};

struct ScenarioScript {
  std::string name;
  std::uint64_t seed = 1;
  std::size_t n_files = 40;
  Bytes file_size = 64 * kKB;
  std::vector<PhaseSpec> phases;
};

// The phase's catalog (uniform sizes; rates per the spec's shape), built
// deterministically with no RNG. Exposed so spcache_cli can shape its TCP
// read sequence from the same scripts the in-process driver uses.
Catalog phase_catalog(const ScenarioScript& script, const PhaseSpec& spec);

// The file the phase concentrates load on: flash_file under a flash, the
// max-rate file of the phase catalog otherwise.
FileId phase_hot_file(const ScenarioScript& script, const PhaseSpec& spec);

// The four canned adversarial scenarios.
ScenarioScript make_drift_scenario();
ScenarioScript make_flash_crowd_scenario();
ScenarioScript make_correlated_failure_scenario(std::size_t n_servers);
ScenarioScript make_multi_tenant_scenario();

// All four, sized for `n_servers` (bench/check.sh iterate this).
std::vector<ScenarioScript> all_scenarios(std::size_t n_servers);

}  // namespace spcache::scenario
