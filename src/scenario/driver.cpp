#include "scenario/driver.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "cluster/client.h"
#include "cluster/stable_store.h"
#include "common/thread_pool.h"
#include "math/scale_factor.h"
#include "workload/popularity_tracker.h"
#include "workload/straggler.h"

namespace spcache::scenario {

namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

fault::RetryPolicy scenario_retry() {
  fault::RetryPolicy policy;
  policy.piece_attempts = 3;
  policy.read_attempts = 6;
  policy.base_backoff = std::chrono::microseconds(50);
  policy.max_backoff = std::chrono::microseconds(500);
  return policy;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
}

}  // namespace

double ScenarioReport::worst_eta() const {
  double worst = 0.0;
  for (const auto& p : phases) worst = std::max(worst, p.eta);
  return worst;
}

double ScenarioReport::worst_p99_ms() const {
  double worst = 0.0;
  for (const auto& p : phases) worst = std::max(worst, p.p99_ms);
  return worst;
}

std::size_t ScenarioReport::total_failures() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.failures;
  return n;
}

std::size_t ScenarioReport::total_mismatches() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.mismatches;
  return n;
}

ScenarioDriver::ScenarioDriver(ScenarioScript script, ScenarioDriverConfig config)
    : script_(std::move(script)), config_(config) {
  if (script_.phases.empty()) {
    throw std::invalid_argument("ScenarioDriver: script has no phases");
  }
}

ScenarioReport ScenarioDriver::run(obs::MetricsRegistry* registry, obs::TraceRecorder* trace) {
  ScenarioReport report;
  report.scenario = script_.name;
  report.adaptive = config_.adaptive;

  Cluster cluster(config_.n_servers, config_.bandwidth);
  Master master;
  ThreadPool pool(std::max<std::size_t>(1, config_.threads));
  StableStore stable;
  if (registry != nullptr) cluster.attach_observability(registry);

  // Offline Algorithm 1 on phase 0's catalog: "yesterday's re-balance".
  // find_scale_factor draws the placement seed as its Rng's first u64, so
  // re-deriving it from a sibling Rng hands the controller the exact seed
  // the offline bounds were computed under.
  const Catalog initial = phase_catalog(script_, script_.phases.front());
  const auto bandwidths = cluster.bandwidths();
  const std::uint64_t placement_seed = Rng(script_.seed).next_u64();
  Rng search_rng(script_.seed);
  const ScaleFactorResult offline =
      find_scale_factor(initial, bandwidths, config_.controller.search, search_rng);
  report.initial_alpha = offline.alpha;

  SpClient client(cluster, master, pool, &stable, scenario_retry());
  if (registry != nullptr || trace != nullptr) client.attach_observability(registry, trace);

  // Populate: Eq. 1 partition counts on random distinct servers, every
  // file checkpointed so degraded reads always have a stable fallback.
  std::vector<std::vector<std::uint8_t>> originals(script_.n_files);
  std::vector<Bytes> sizes(script_.n_files, script_.file_size);
  Rng place_rng(mix_seed(script_.seed, 0x9'1aceULL));
  for (FileId f = 0; f < script_.n_files; ++f) {
    originals[f] = pattern_bytes(script_.file_size, f);
    const std::size_t k = offline.partition_counts[f];
    const auto sampled = place_rng.sample_without_replacement(config_.n_servers, k);
    std::vector<std::uint32_t> servers(sampled.begin(), sampled.end());
    client.write(f, originals[f], servers);
    stable.checkpoint(f, originals[f]);
  }

  PopularityTracker tracker(config_.tracker_half_life);
  std::optional<AlphaController> controller;
  if (config_.adaptive) {
    controller.emplace(cluster, master, tracker, config_.controller, offline.alpha,
                       placement_seed);
    controller->attach_observability(registry, trace);
  }

  Seconds now = 0.0;
  for (std::size_t phase_idx = 0; phase_idx < script_.phases.size(); ++phase_idx) {
    const PhaseSpec& spec = script_.phases[phase_idx];
    Rng phase_rng(mix_seed(script_.seed, phase_idx + 1));
    const Catalog catalog = phase_catalog(script_, spec);
    const auto arrivals =
        spec.arrivals == ArrivalKind::kMmpp
            ? generate_mmpp_arrivals(catalog, spec.mmpp, spec.requests, phase_rng)
            : generate_poisson_arrivals(catalog, spec.requests, phase_rng);
    const StragglerModel straggler = spec.straggler_p > 0.0
                                         ? StragglerModel::bing(spec.straggler_p)
                                         : StragglerModel::none();

    // Scripted faults ride the injector's crash list. The correlated-
    // failure resolver targets the hot file's holders *as laid out now* —
    // after any adaptation the previous phases performed.
    fault::FaultInjector injector(mix_seed(script_.seed, 0xfa17ULL + phase_idx));
    for (const auto& event : spec.events) injector.schedule(event);
    if (spec.kill_hot_holders) {
      const FileId hot = phase_hot_file(script_, spec);
      const auto meta = master.peek(hot);
      std::vector<std::uint32_t> holders = meta ? meta->servers : std::vector<std::uint32_t>{};
      std::sort(holders.begin(), holders.end());
      holders.erase(std::unique(holders.begin(), holders.end()), holders.end());
      const std::size_t n_kill =
          std::min(holders.size(), (config_.n_servers + 2) / 3);
      for (std::size_t i = 0; i < n_kill; ++i) {
        injector.schedule(fault::CrashEvent{spec.kill_at, holders[i],
                                            fault::CrashEvent::Action::kKill});
      }
    }

    if (trace != nullptr) {
      trace->record(obs::TraceKind::kScenarioPhase, 0, phase_idx, 0, 0,
                    static_cast<double>(spec.requests));
    }

    PhaseReport phase;
    phase.name = spec.name;
    phase.hot_file = phase_hot_file(script_, spec);
    if (const auto meta = master.peek(phase.hot_file)) {
      phase.hot_partitions_start = meta->partitions();
    }
    const auto loads_start = cluster.served_bytes();
    obs::LatencyHistogram latency;
    const Seconds phase_start = now;
    std::set<std::uint32_t> dead;

    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      for (const auto& event : injector.due(i)) {
        if (event.action == fault::CrashEvent::Action::kKill) {
          cluster.kill(event.server);
          dead.insert(event.server);
          ++phase.kills;
        } else {
          cluster.revive(event.server);
          dead.erase(event.server);
          ++phase.revives;
        }
      }
      if (spec.repair_at != 0 && i == spec.repair_at) {
        RecoveryManager recovery(cluster, master, stable);
        if (registry != nullptr) recovery.attach_observability(registry);
        for (const std::uint32_t s : dead) {
          recovery.repair_after_server_loss(s);
          ++phase.repairs;
        }
      }

      now = phase_start + arrivals[i].time;
      const FileId f = arrivals[i].file;
      tracker.record(f, now);
      try {
        const IoResult io = client.read(f);
        phase.retries += io.retries;
        if (io.degraded) ++phase.degraded_reads;
        phase.degraded_pieces += io.degraded_pieces;
        const double slowdown =
            straggler.enabled() ? straggler.sample_slowdown(phase_rng) : 1.0;
        latency.record(io.network_time * slowdown);
        if (io.bytes != originals[f]) ++phase.mismatches;
      } catch (const std::exception&) {
        ++phase.failures;
      }
      ++phase.requests;

      if (controller && (i + 1) % config_.controller_every == 0) {
        const AdaptOutcome out = controller->observe(cluster.served_bytes(), sizes, now);
        phase.triggers += out.triggered ? 1 : 0;
        phase.adaptations += out.adapted ? 1 : 0;
        phase.splits += out.splits;
        phase.merges += out.merges;
        phase.bytes_moved += out.bytes_moved;
      }
    }

    // Phase cleanup: revive anything the script killed (a repaired layout
    // no longer references the dead servers; an unrepaired one degrades
    // until the next repair — either way the next phase starts with a
    // full complement of servers).
    for (const std::uint32_t s : dead) {
      if (!cluster.is_alive(s)) {
        cluster.revive(s);
        ++phase.revives;
      }
    }

    const auto loads_end = cluster.served_bytes();
    std::vector<double> window(loads_end.size());
    for (std::size_t s = 0; s < loads_end.size(); ++s) {
      window[s] = loads_end[s] - loads_start[s];
    }
    phase.eta = obs::load_eta(window);
    if (const auto meta = master.peek(phase.hot_file)) {
      phase.hot_partitions_end = meta->partitions();
    }
    phase.alpha_end = controller ? controller->alpha() : offline.alpha;
    phase.latency = latency.snapshot();
    phase.p50_ms = phase.latency.percentile(0.50) * 1e3;
    phase.p99_ms = phase.latency.percentile(0.99) * 1e3;

    now = phase_start + (arrivals.empty() ? 0.0 : arrivals.back().time) + 1e-3;
    report.phases.push_back(std::move(phase));
  }
  return report;
}

}  // namespace spcache::scenario
