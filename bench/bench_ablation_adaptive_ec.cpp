// Ablation: adaptive vs uniform EC-Cache vs SP-Cache (Section 7.1
// "Baselines").
//
// The EC-Cache authors describe (but never fully specified) an adaptive
// coding mode at ~15% memory overhead; the SP-Cache paper evaluated the
// uniform (10,14) / 40% configuration instead. With our reconstruction of
// the adaptive allocator, the comparison can be run both ways — including
// the paper's open question of whether adaptivity closes the gap to
// SP-Cache.
#include <iostream>

#include "bench_common.h"
#include "core/adaptive_ec.h"
#include "core/ec_cache.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Ablation: adaptive EC-Cache",
                          "SP-Cache vs adaptive EC (15% / 40% budgets) vs uniform (10,14) "
                          "EC under stragglers, rates 10 and 18.");

  Table t({"rate", "scheme", "mean_s", "p95_s", "memory_overhead_pct"});
  for (double rate : {10.0, 18.0}) {
    const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, rate);
    auto run = [&](CachingScheme& scheme) {
      auto cfg = default_sim_config(5001);
      cfg.stragglers = StragglerModel::bing(0.05);
      return run_experiment(scheme, cat, 9000, cfg, 5002);
    };
    SpCacheScheme sp;
    const auto r_sp = run(sp);
    t.add_row({rate, sp.name(), r_sp.mean, r_sp.p95, sp.memory_overhead(cat) * 100.0});

    AdaptiveEcScheme adaptive15({10, 4, 0.15, {}});
    const auto r_a15 = run(adaptive15);
    t.add_row({rate, std::string("Adaptive EC (15%)"), r_a15.mean, r_a15.p95,
               adaptive15.memory_overhead(cat) * 100.0});

    AdaptiveEcScheme adaptive40({10, 4, 0.40, {}});
    const auto r_a40 = run(adaptive40);
    t.add_row({rate, std::string("Adaptive EC (40%)"), r_a40.mean, r_a40.p95,
               adaptive40.memory_overhead(cat) * 100.0});

    EcCacheScheme uniform;
    const auto r_ec = run(uniform);
    t.add_row({rate, std::string("Uniform EC (10,14)"), r_ec.mean, r_ec.p95,
               uniform.memory_overhead(cat) * 100.0});
  }
  t.print(std::cout);
  std::cout << "\nReading the table: adaptivity recovers most of uniform EC's performance\n"
               "at a fraction of its memory, but every EC variant still pays decode and\n"
               "shard-read overheads that the redundancy-free SP-Cache avoids.\n";
  return 0;
}
