// Ablation: what re-balancing is worth — read latency on a stale layout vs
// a repartitioned one after a popularity shift (the end-to-end payoff of
// Section 6.2, complementing Fig. 16's cost view).
//
// Procedure: place with Algorithm 1 for the original popularity; shuffle
// the popularity ranks; then serve the SHIFTED workload either (a) on the
// stale placement or (b) on the layout produced by Algorithm 2's plan.
#include <iostream>

#include "bench_common.h"
#include "core/repartition.h"
#include "core/sp_cache.h"
#include "workload/arrivals.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

SimResult simulate_layout(const Catalog& cat,
                          const std::vector<std::vector<std::uint32_t>>& servers,
                          std::uint64_t seed) {
  SimConfig cfg = default_sim_config(seed);
  Simulation sim(cfg);
  Rng arrival_rng(seed + 1);
  const auto arrivals = generate_poisson_arrivals(cat, 9000, arrival_rng);
  auto planner = [&cat, &servers](FileId f, Rng&) {
    ReadPlan plan;
    const auto& s = servers[f];
    const Bytes piece = cat.file(f).size / s.size();
    for (std::uint32_t srv : s) plan.fetches.push_back(PartitionFetch{srv, piece});
    plan.needed = plan.fetches.size();
    return plan;
  };
  return sim.run(arrivals, planner);
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Ablation: repartition payoff",
                          "Read latency on the shifted workload: stale layout vs the "
                          "Algorithm 2 repartitioned layout (500 x 100 MB files, rate 16).");

  auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, 16.0);
  const std::vector<Bandwidth> bw(kServers, gbps(1.0));
  Rng rng(7100);

  // Hold the scale factor fixed across the shift (a paper-style selective
  // elbow: hottest file ~ 17 partitions) so the A/B isolates *placement*
  // staleness from alpha re-tuning.
  const double alpha = 17.0 / cat.max_load();
  SpCacheConfig sp_cfg;
  sp_cfg.fixed_alpha = alpha;
  SpCacheScheme sp(sp_cfg);
  sp.place(cat, bw, rng);
  std::vector<std::vector<std::uint32_t>> stale;
  for (const auto& p : sp.placements()) stale.push_back(p.servers);

  // Overnight, the ranks shuffle: yesterday's hot (finely split) files cool
  // off; newly hot files sit unsplit on single servers.
  cat.shuffle_popularities(rng);

  // (a) serve the shifted traffic on the stale layout;
  const auto r_stale = simulate_layout(cat, stale, 7101);

  // (b) apply Algorithm 2 at the same alpha and serve on the new layout.
  const auto plan = plan_repartition_with_alpha(cat, kServers, alpha, sp.partition_counts(),
                                                stale, rng);
  auto fresh = stale;
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    fresh[plan.changed_files[j]] = plan.new_servers[j];
  }
  const auto r_fresh = simulate_layout(cat, fresh, 7101);

  Table t({"layout", "mean_s", "p95_s", "imbalance_eta"});
  t.add_row({std::string("Stale (pre-shift)"), r_stale.mean_latency(), r_stale.tail_latency(),
             r_stale.imbalance()});
  t.add_row({std::string("Repartitioned (Algorithm 2)"), r_fresh.mean_latency(),
             r_fresh.tail_latency(), r_fresh.imbalance()});
  t.print(std::cout);
  std::cout << "\n" << plan.changed_files.size() << " / " << cat.size()
            << " files were repartitioned to realize this improvement (the movement\n"
               "cost of which is Fig. 16's ~1-3 s of parallel repartition time).\n";
  return 0;
}
