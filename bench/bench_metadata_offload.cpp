// Metadata-light read path: what the SP-Master stops paying per read.
//
// Under the paper's Zipf skew the servers Eq. 1 balances stop being the
// bottleneck once every read also pays a synchronous master LOOKUP — the
// metadata path saturates first. This bench drives the real RPC stack
// (Bus + MasterService + CacheWorkerService workers + RpcSpClient) with
// Zipf-distributed reads from concurrent client threads and compares two
// configurations of the *same* cluster:
//
//   baseline   ClientCacheConfig with every knob off: LOOKUP per read,
//              one kGetBlock envelope per piece, no single-flight.
//   cached     the default metadata-light path: epoch-validated layout
//              cache (kLookupBatch warmup), per-worker kGetBlockMulti
//              coalescing, single-flight dedup, batched kReportAccess.
//
// Reported per mode: reads/sec, master LOOKUPs per read, the fraction of
// reads that never touched the master (steady-state target: >= 90%),
// bus envelopes per read, and p99 read latency. Popularity parity is
// checked too: after the flush, the master's access total equals the
// number of reads, so Eq. 1's P_i input survives the offload. Output:
// console table + CSV + machine-readable BENCH_metadata.json.
//
// `--smoke` shrinks the measurement for CI (tools/check.sh).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "rpc/cache_service.h"
#include "workload/zipf.h"

namespace spcache::bench {
namespace {

constexpr std::size_t kNWorkers = 8;
constexpr std::size_t kFiles = 48;
constexpr Bytes kFileBytes = 96 * kKB;
constexpr double kZipfExponent = 1.05;  // Section 7.1 skew

using Clock = std::chrono::steady_clock;

struct BenchConfig {
  std::size_t threads = 4;
  double measure_seconds = 1.0;
};

struct ModeResult {
  std::string mode;
  std::uint64_t reads = 0;
  double reads_per_sec = 0.0;
  double lookups_per_read = 0.0;
  double lookup_free_frac = 0.0;  // reads that never touched the master
  double envelopes_per_read = 0.0;
  double coalesced_per_read = 0.0;
  double p99_us = 0.0;
  std::uint64_t access_total = 0;  // master-side popularity after flush
};

std::vector<std::uint8_t> payload(FileId id) {
  std::vector<std::uint8_t> v(kFileBytes);
  std::uint64_t s = 0x9e3779b97f4a7c15ull ^ (id * 0xbf58476d1ce4e5b9ull);
  for (auto& b : v) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    b = static_cast<std::uint8_t>(s);
  }
  return v;
}

ModeResult run_mode(const std::string& mode, const ClientCacheConfig& cache,
                    const BenchConfig& bench) {
  rpc::Bus bus;
  obs::MetricsRegistry registry;
  rpc::MasterService master(bus);
  std::vector<std::unique_ptr<rpc::CacheWorkerService>> workers;
  std::vector<rpc::NodeId> worker_nodes;
  for (std::size_t s = 0; s < kNWorkers; ++s) {
    workers.push_back(std::make_unique<rpc::CacheWorkerService>(
        bus, rpc::kFirstWorkerNode + static_cast<rpc::NodeId>(s),
        static_cast<std::uint32_t>(s), gbps(1.0)));
    worker_nodes.push_back(workers.back()->node_id());
  }
  rpc::RpcSpClient client(bus, rpc::kFirstClientNode, rpc::kMasterNode, worker_nodes,
                          fault::RetryPolicy{}, std::chrono::milliseconds(2000), cache);
  bus.attach_observability(&registry);
  client.attach_observability(&registry);
  master.master().attach_observability(&registry);

  // Catalog: hot files (low Zipf rank = low id) get more partitions, like
  // Eq. 1 would assign them. The hottest few are chunked past the worker
  // count (the Fig. 14 regime), so several of their pieces share a worker
  // and the coalesced path has envelopes to merge.
  std::vector<FileId> ids;
  for (FileId f = 0; f < kFiles; ++f) {
    const std::size_t k = f < 4 ? 12 : (f < 16 ? 3 : 1);
    std::vector<std::uint32_t> servers;
    for (std::size_t i = 0; i < k; ++i) {
      servers.push_back(static_cast<std::uint32_t>((f + i) % kNWorkers));
    }
    client.write(f, payload(f), servers);
    ids.push_back(f);
  }

  // Warm-up: one kLookupBatch primes the cache (metadata-light mode);
  // a read of each file touches every worker path in both modes.
  client.prefetch_layouts(ids);
  for (FileId f = 0; f < kFiles; ++f) {
    if (client.read(f).size() != kFileBytes) throw std::runtime_error("warmup: short read");
  }

  const auto lookups0 = registry.counter(obs::names::kMasterLookups).value();
  const auto routed0 = registry.counter(obs::names::kBusRouted).value();
  const auto coalesced0 = registry.counter(obs::names::kBusEnvelopesCoalesced).value();

  ZipfDistribution zipf(kFiles, kZipfExponent);
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(bench.threads, 0);
  std::vector<std::vector<double>> latencies(bench.threads);
  std::vector<std::thread> threads;
  threads.reserve(bench.threads);
  for (std::size_t t = 0; t < bench.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xfeed + 31 * t);
      auto& lat = latencies[t];
      lat.reserve(1 << 12);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const FileId id = static_cast<FileId>(zipf.sample(rng));
        const auto op_start = Clock::now();
        const auto bytes = client.read(id);
        const auto op_end = Clock::now();
        if (bytes.size() != kFileBytes) throw std::runtime_error("bench: short read");
        ++ops[t];
        lat.push_back(std::chrono::duration<double, std::micro>(op_end - op_start).count());
      }
    });
  }

  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  while (std::chrono::duration<double>(Clock::now() - start).count() < bench.measure_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  ModeResult result;
  result.mode = mode;
  std::vector<double> all;
  for (std::size_t t = 0; t < bench.threads; ++t) {
    result.reads += ops[t];
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
  }
  result.reads_per_sec = static_cast<double>(result.reads) / elapsed;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    result.p99_us = all[std::min(all.size() - 1,
                                 static_cast<std::size_t>(0.99 * static_cast<double>(all.size())))];
  }

  const auto lookups = registry.counter(obs::names::kMasterLookups).value() - lookups0;
  const auto routed = registry.counter(obs::names::kBusRouted).value() - routed0;
  const auto coalesced = registry.counter(obs::names::kBusEnvelopesCoalesced).value() - coalesced0;
  if (result.reads > 0) {
    const double reads = static_cast<double>(result.reads);
    result.lookups_per_read = static_cast<double>(lookups) / reads;
    result.lookup_free_frac =
        lookups >= result.reads ? 0.0 : 1.0 - static_cast<double>(lookups) / reads;
    result.envelopes_per_read = static_cast<double>(routed) / reads;
    result.coalesced_per_read = static_cast<double>(coalesced) / reads;
  }

  // Popularity parity: the flush delivers every cache-served access, so
  // the master's total matches what a per-read-LOOKUP deployment records.
  client.flush_access_reports();
  for (FileId f = 0; f < kFiles; ++f) result.access_total += client.access_count(f);
  return result;
}

}  // namespace
}  // namespace spcache::bench

int main(int argc, char** argv) {
  using namespace spcache;
  using namespace spcache::bench;

  BenchConfig bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      bench.threads = 2;
      bench.measure_seconds = 0.15;
    }
  }

  print_experiment_header(
      std::cout, "Metadata offload",
      "Zipf reads over the RPC stack at " + std::to_string(bench.threads) +
          " client threads: always-LOOKUP baseline vs the metadata-light\n"
          "path (epoch-validated layout cache + per-worker multi-GET\n"
          "coalescing + single-flight + batched kReportAccess). " +
          std::to_string(kFiles) + " files x " + std::to_string(kFileBytes / kKB) + " kB on " +
          std::to_string(kNWorkers) + " workers.");

  ClientCacheConfig baseline;
  baseline.layout_cache = false;
  baseline.coalesce = false;
  baseline.single_flight = false;
  const auto base = run_mode("baseline", baseline, bench);
  const auto light = run_mode("cached", ClientCacheConfig{}, bench);

  Table table({"mode", "reads", "reads_s", "lookups_per_read", "lookup_free", "env_per_read",
               "coalesced_per_read", "p99_us"});
  table.set_precision(4);
  std::vector<JsonRow> json_rows;
  for (const auto& r : {base, light}) {
    table.add_row({r.mode, static_cast<long long>(r.reads), r.reads_per_sec, r.lookups_per_read,
                   r.lookup_free_frac, r.envelopes_per_read, r.coalesced_per_read, r.p99_us});
    JsonRow row{text_field("mode", r.mode),
                {"reads", static_cast<double>(r.reads)},
                {"reads_per_sec", r.reads_per_sec},
                {"lookups_per_read", r.lookups_per_read},
                {"lookup_free_frac", r.lookup_free_frac},
                {"envelopes_per_read", r.envelopes_per_read},
                {"coalesced_per_read", r.coalesced_per_read},
                {"p99_us", r.p99_us},
                {"master_access_total", static_cast<double>(r.access_total)}};
    json_rows.push_back(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n";
  table.print_csv(std::cout);

  const double speedup = base.reads_per_sec > 0 ? light.reads_per_sec / base.reads_per_sec : 0.0;
  json_rows.push_back(JsonRow{text_field("mode", "summary"),
                              {"throughput_speedup", speedup},
                              {"lookup_free_frac", light.lookup_free_frac}});
  std::cout << "\nthroughput speedup (cached/baseline): " << speedup
            << "\nlookup-free reads (cached, steady state): " << light.lookup_free_frac * 100.0
            << "%\n";

  const auto path = write_json_report("metadata", json_rows);
  std::cout << "wrote " << path << "\n";

  if (light.lookup_free_frac < 0.9) {
    std::cerr << "FAIL: fewer than 90% of steady-state reads were lookup-free\n";
    return 1;
  }
  if (speedup <= 1.0) {
    std::cerr << "FAIL: metadata-light throughput did not beat the baseline\n";
    return 1;
  }
  return 0;
}
