// Ablation: segment-level vs whole-file selective partition (Section 8
// "Finer-Grained Partition").
//
// A Parquet-like file with one hot column group: whole-file splitting makes
// *every* read touch all k pieces; segment-level splitting concentrates
// pieces on the hot bytes, so cold-column readers fetch a single piece.
#include <iostream>

#include "bench_common.h"
#include "core/segment_partition.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Ablation: segment partition",
                          "Whole-file vs per-segment Eq. 1 on a columnar file (hot key "
                          "column + cold columns), sweeping the hot column's share of "
                          "accesses.");

  Table t({"hot_access_share", "whole_k", "whole_fetches_per_read", "seg_pieces",
           "seg_fetches_per_read", "seg_max_piece_load_ratio"});
  for (double hot_share : {0.5, 0.7, 0.9, 0.97}) {
    SegmentedFile f;
    const double cold_share = (1.0 - hot_share) / 7.0;
    f.segments.push_back({40 * kMB, hot_share * 100.0});
    for (int i = 0; i < 7; ++i) f.segments.push_back({10 * kMB, cold_share * 100.0});

    Rng rng(3300);
    const double alpha = 8.0 / f.segment_load(0);  // hot segment -> 8 pieces
    const auto plan = plan_segment_partition(f, alpha, kServers, rng);
    const std::size_t k_whole = whole_file_partitions(f, alpha, kServers);

    double seg_fetches = 0.0;
    for (std::size_t j = 0; j < f.segments.size(); ++j) {
      seg_fetches += f.segments[j].request_rate / f.total_rate() *
                     static_cast<double>(plan.partitions[j]);
    }
    const double balance_ratio =
        max_partition_load(f, plan) / max_partition_load_whole(f, k_whole);

    t.add_row({hot_share, static_cast<long long>(k_whole),
               static_cast<double>(k_whole),  // every whole-file read touches all pieces
               static_cast<long long>(plan.total_pieces()), seg_fetches, balance_ratio});
  }
  t.print(std::cout);
  std::cout << "\nExpected: per-segment splitting needs fewer fetches per read (cold\n"
               "columns stay whole) at comparable per-piece load, and the advantage\n"
               "grows with intra-file skew — the case the paper makes for extending\n"
               "SP-Cache below file granularity.\n";
  return 0;
}
