// Ablation: placement policy (Section 9 "Data Placement").
//
// Compares three placement philosophies on the same skewed workload:
//   1. consistent hashing, no partition (popularity-agnostic; the related
//      work the paper argues against),
//   2. stock random placement, no partition,
//   3. SP-Cache (selective partition + random placement).
//
// The point of Section 5.1: once per-partition loads are equalized by
// Eq. 1, *random* placement suffices — placement optimization is obviated
// by load equalization, not by a smarter mapping.
#include <iostream>

#include "bench_common.h"
#include "core/hash_placement.h"
#include "core/simple_partition.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Ablation: placement",
                          "Consistent hashing vs random (both unpartitioned) vs SP-Cache "
                          "at rate 14 (500 x 100 MB files, Zipf 1.05).");

  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, 14.0);

  Table t({"policy", "mean_s", "p95_s", "imbalance_eta"});
  HashPlacementScheme hashing;
  const auto r_hash = run_experiment(hashing, cat, 8000, default_sim_config(3001), 3002);
  t.add_row({hashing.name(), r_hash.mean, r_hash.p95, r_hash.imbalance});

  StockScheme random_stock;
  const auto r_rand = run_experiment(random_stock, cat, 8000, default_sim_config(3001), 3002);
  t.add_row({std::string("Random (no partition)"), r_rand.mean, r_rand.p95, r_rand.imbalance});

  SpCacheScheme sp;
  const auto r_sp = run_experiment(sp, cat, 8000, default_sim_config(3001), 3002);
  t.add_row({sp.name(), r_sp.mean, r_sp.p95, r_sp.imbalance});
  t.print(std::cout);

  std::cout << "\nExpected: hashing and random placement are equally helpless against\n"
               "popularity skew (hot spots dominate); selective partition removes the\n"
               "skew at its source and random placement then balances fine.\n";
  return 0;
}
