// Theorem 1: SP-Cache's load-balance advantage over EC-Cache.
//
// Var(X^EC) / Var(X^SP) -> (alpha / k_EC) * (Sum L_i^2) / (Sum L_i) as the
// cluster grows (Eq. 2). This bench cross-checks three estimates of the
// per-server load variance in a large cluster:
//   (a) the closed forms from the proof,
//   (b) Monte-Carlo placement sampling,
//   (c) the asymptotic ratio of Eq. 2,
// across a sweep of scale factors.
#include <iostream>

#include "bench_common.h"
#include "math/scale_factor.h"
#include "math/variance.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Theorem 1",
                          "Load-variance ratio Var(EC)/Var(SP): closed form vs Monte "
                          "Carlo vs Eq. 2's asymptote (N = 300 servers, (10,14) code).");

  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.1, 18.0);
  const std::size_t N = 300;
  Rng rng(31337);

  Table t({"hottest_k", "ratio_closed_form", "ratio_monte_carlo", "eq2_asymptote"});
  for (double k_hot : {10.0, 20.0, 50.0, 100.0, 200.0}) {
    const double alpha = k_hot / cat.max_load();
    const auto k = partition_counts_for_alpha(cat, alpha, N);
    const double sp_cf = sp_load_variance(cat, k, N);
    const double ec_cf = ec_load_variance(cat, 10, N);
    const double sp_mc = monte_carlo_sp_variance(cat, k, N, 60000, rng);
    const double ec_mc = monte_carlo_ec_variance(cat, 10, 14, N, 60000, rng);
    t.add_row({k_hot, ec_cf / sp_cf, ec_mc / sp_mc, theorem1_asymptotic_ratio(cat, alpha, 10)});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: the ratio grows with alpha (finer selective partition),\n"
               "i.e. SP-Cache's balance advantage scales with the hottest file's load —\n"
               "the O(L_max) improvement of Theorem 1. Closed form, Monte Carlo, and\n"
               "Eq. 2 agree (Eq. 2 drops the ceiling and the (1 - k/N) corrections).\n";
  return 0;
}
