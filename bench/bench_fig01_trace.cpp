// Fig. 1: distribution of file access counts and average file size in the
// Yahoo! cluster trace — reproduced from the synthetic trace generator
// (see DESIGN.md's substitution table).
//
// Paper-reported marginals: ~78% of files cold (<10 accesses), ~2% hot
// (>=100 accesses), hot files 15-30x larger than cold ones.
#include <iostream>

#include "bench_common.h"
#include "common/histogram.h"
#include "workload/trace.h"

using namespace spcache;

int main() {
  print_experiment_header(std::cout, "Fig. 1",
                          "Access-count distribution and mean file size per popularity "
                          "bucket, synthetic Yahoo!-like population (100k files).");

  Rng rng(20180101);
  YahooTraceModel model;
  const auto records = generate_yahoo_trace(100000, model, rng);

  // Power-of-10 buckets over access counts, as in the figure's x-axis.
  LogHistogram counts(10.0, 6);
  std::vector<double> bytes_per_bucket(6, 0.0);
  std::vector<double> files_per_bucket(6, 0.0);
  for (const auto& r : records) {
    counts.add(static_cast<double>(r.access_count));
    std::size_t b = 0;
    for (double lo = 10.0; b + 1 < 6 && static_cast<double>(r.access_count) >= lo; lo *= 10.0) ++b;
    bytes_per_bucket[b] += static_cast<double>(r.size);
    files_per_bucket[b] += 1.0;
  }

  Table t({"access_count_bucket", "fraction_of_files", "avg_file_size_MB"});
  for (std::size_t b = 0; b < counts.buckets(); ++b) {
    const double avg_mb = files_per_bucket[b] == 0.0
                              ? 0.0
                              : bytes_per_bucket[b] / files_per_bucket[b] / static_cast<double>(kMB);
    t.add_row({counts.bucket_label(b), counts.fraction(b), avg_mb});
  }
  t.print(std::cout);

  const auto s = summarize_trace(records, model);
  std::cout << "\nSummary vs paper:\n";
  Table cmp({"metric", "paper", "measured"});
  cmp.add_row({std::string("cold fraction (<10 accesses)"), std::string("~0.78"), s.cold_fraction});
  cmp.add_row({std::string("hot fraction (>=100 accesses)"), std::string("~0.02"), s.hot_fraction});
  cmp.add_row({std::string("hot/cold mean size ratio"), std::string("15-30x"),
               s.hot_to_cold_size_ratio});
  cmp.print(std::cout);
  return 0;
}
