// Fig. 12: per-server load distribution under the three load-balancing
// schemes (Section 7.3).
//
// Setup per the paper: 500 x 100 MB files, Zipf 1.05, request rate 18; load
// measured as total bytes served per cache server. Expected ordering of the
// imbalance factor eta = (max-avg)/avg:
//   SP-Cache (~0.18)  <<  EC-Cache (~0.44)  <<  selective replication (~1.18).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

void report(const std::string& name, const ExperimentResult& r, Table& dist, Table& eta) {
  auto loads = r.server_loads;
  std::sort(loads.begin(), loads.end());
  const double total = [&loads] {
    double s = 0.0;
    for (double l : loads) s += l;
    return s;
  }();
  const double avg = total / static_cast<double>(loads.size());
  dist.add_row({name, loads.front() / avg, loads[loads.size() / 4] / avg,
                loads[loads.size() / 2] / avg, loads[3 * loads.size() / 4] / avg,
                loads.back() / avg});
  eta.add_row({name, r.imbalance});
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Fig. 12",
                          "Per-server load distribution (bytes served, normalized by the "
                          "cluster average) and imbalance factor eta at rate 18.");

  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, 18.0);

  Table dist({"scheme", "min/avg", "p25/avg", "median/avg", "p75/avg", "max/avg"});
  Table eta({"scheme", "imbalance_eta"});

  SpCacheScheme sp;
  report("SP-Cache", run_experiment(sp, cat, 12000, default_sim_config(51), 501), dist, eta);
  EcCacheScheme ec;
  report("EC-Cache", run_experiment(ec, cat, 12000, default_sim_config(51), 501), dist, eta);
  SelectiveReplicationScheme sr;
  report("Selective replication",
         run_experiment(sr, cat, 12000, default_sim_config(51), 501), dist, eta);

  dist.print(std::cout);
  std::cout << '\n';
  eta.print(std::cout);
  std::cout << "\nPaper anchors: eta ~ 0.18 (SP) vs 0.44 (EC) vs 1.18 (replication) —\n"
               "SP-Cache balances best, replication worst.\n";
  return 0;
}
