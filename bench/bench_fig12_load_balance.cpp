// Fig. 12: per-server load distribution under the three load-balancing
// schemes (Section 7.3).
//
// Two passes:
//
//   simulated   the paper-scale setup (500 x 100 MB files, Zipf 1.05,
//               request rate 18; load = bytes served per cache server).
//               Expected ordering of the imbalance factor
//               eta = (max-avg)/avg:
//                 SP-Cache (~0.18) << EC-Cache (~0.44) << replication (~1.18).
//
//   measured    the same experiment on the *threaded* cluster at reduced
//               scale (real bytes move, so 300 x 64 KB instead of 50 GB):
//               files are written per the scheme's placement, Poisson
//               arrivals replayed through an instrumented SpClient, and
//               the headline numbers — max/mean server load and read
//               p50/p95/p99 — come straight from a ClusterObserver
//               snapshot of the obs::MetricsRegistry, not from
//               recomputed means. BENCH_fig12_load_balance.json carries
//               one row per scheme.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "cluster/client.h"
#include "common/thread_pool.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/simple_partition.h"
#include "core/sp_cache.h"
#include "obs/cluster_observer.h"
#include "workload/arrivals.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

void report(const std::string& name, const ExperimentResult& r, Table& dist, Table& eta) {
  auto loads = r.server_loads;
  std::sort(loads.begin(), loads.end());
  const double total = [&loads] {
    double s = 0.0;
    for (double l : loads) s += l;
    return s;
  }();
  const double avg = total / static_cast<double>(loads.size());
  dist.add_row({name, loads.front() / avg, loads[loads.size() / 4] / avg,
                loads[loads.size() / 2] / avg, loads[3 * loads.size() / 4] / avg,
                loads.back() / avg});
  eta.add_row({name, r.imbalance});
}

// --- measured pass: the threaded cluster with the obs layer attached ----

constexpr std::size_t kMeasuredServers = 16;
constexpr std::size_t kMeasuredFiles = 300;
constexpr Bytes kMeasuredFileBytes = 64 * kKB;
constexpr std::size_t kMeasuredRequests = 3000;

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

// Write every file per the scheme's placement, replay Poisson arrivals
// through an instrumented client, and return the ClusterObserver stats.
obs::ClusterStats run_measured(CachingScheme& scheme, const Catalog& catalog,
                               std::uint64_t seed) {
  Cluster cluster(kMeasuredServers, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  obs::MetricsRegistry registry;

  Rng place_rng(seed);
  scheme.place(catalog, cluster.bandwidths(), place_rng);

  SpClient client(cluster, master, pool);
  for (FileId f = 0; f < kMeasuredFiles; ++f) {
    const auto& p = scheme.placement(f);
    // Replicated schemes store copies; the load experiment reads one copy,
    // so write the first data_pieces worth of the placement.
    std::vector<std::uint32_t> servers(p.servers.begin(),
                                       p.servers.begin() + static_cast<long>(p.data_pieces));
    const auto data = pattern_bytes(kMeasuredFileBytes, f);
    if (servers.size() == p.data_pieces && p.piece_bytes.size() >= p.data_pieces) {
      std::vector<Bytes> sizes(p.piece_bytes.begin(),
                               p.piece_bytes.begin() + static_cast<long>(p.data_pieces));
      Bytes sum = 0;
      for (Bytes b : sizes) sum += b;
      if (sum == data.size()) {
        client.write_sized(f, data, servers, sizes);
        continue;
      }
    }
    client.write(f, data, servers);
  }

  // Instrument after the writes: the measured load is read traffic only.
  cluster.attach_observability(&registry);
  master.attach_observability(&registry);
  client.attach_observability(&registry);
  cluster.reset_load_counters();

  Rng arrival_rng(seed + 1);
  const auto arrivals = generate_poisson_arrivals(catalog, kMeasuredRequests, arrival_rng);
  for (const auto& a : arrivals) (void)client.read(a.file);

  obs::ClusterObserver observer(registry);
  return observer.collect(cluster.served_bytes());
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Fig. 12",
                          "Per-server load distribution (bytes served, normalized by the "
                          "cluster average) and imbalance factor eta at rate 18.");

  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, 18.0);

  Table dist({"scheme", "min/avg", "p25/avg", "median/avg", "p75/avg", "max/avg"});
  Table eta({"scheme", "imbalance_eta"});

  SpCacheScheme sp;
  report("SP-Cache", run_experiment(sp, cat, 12000, default_sim_config(51), 501), dist, eta);
  EcCacheScheme ec;
  report("EC-Cache", run_experiment(ec, cat, 12000, default_sim_config(51), 501), dist, eta);
  SelectiveReplicationScheme sr;
  report("Selective replication",
         run_experiment(sr, cat, 12000, default_sim_config(51), 501), dist, eta);

  dist.print(std::cout);
  std::cout << '\n';
  eta.print(std::cout);
  std::cout << "\nPaper anchors: eta ~ 0.18 (SP) vs 0.44 (EC) vs 1.18 (replication) —\n"
               "SP-Cache balances best, replication worst.\n";

  // --- measured pass on the threaded cluster ---------------------------
  const auto measured_cat =
      make_uniform_catalog(kMeasuredFiles, kMeasuredFileBytes, 1.05, 18.0);

  Table measured({"scheme", "load_max/mean", "eta", "read_p50_us", "read_p95_us",
                  "read_p99_us", "hit_ratio"});
  std::vector<JsonRow> rows;
  struct Entry {
    std::string label;
    CachingScheme* scheme;
  };
  SpCacheScheme sp_measured;
  SimplePartitionScheme stock(1);  // stock, no-partition layout
  for (const Entry& e : {Entry{"SP-Cache", &sp_measured}, Entry{"Stock", &stock}}) {
    const auto stats = run_measured(*e.scheme, measured_cat, 7112);
    measured.add_row({e.label, stats.load_imbalance, stats.load_eta, stats.read_p50_s * 1e6,
                      stats.read_p95_s * 1e6, stats.read_p99_s * 1e6, stats.hit_ratio});
    JsonRow row;
    row.push_back(text_field("scheme", e.label));
    row.push_back({"load_max", stats.load_max});
    row.push_back({"load_mean", stats.load_mean});
    row.push_back({"imbalance_max_over_mean", stats.load_imbalance});
    row.push_back({"eta", stats.load_eta});
    row.push_back({"reads", static_cast<double>(stats.reads)});
    append_percentiles(row, "read_s_", stats.read_latency);
    row.push_back({"hit_ratio", stats.hit_ratio});
    rows.push_back(std::move(row));
  }
  std::cout << "\nMeasured on the threaded cluster (" << kMeasuredServers << " servers, "
            << kMeasuredFiles << " x " << kMeasuredFileBytes / kKB
            << " KB, ClusterObserver snapshot):\n";
  measured.print(std::cout);

  const auto path = write_json_report("fig12_load_balance", rows);
  std::cout << "\nwrote " << path << "\n";
  return 0;
}
