// Fig. 18: load distribution after parallel (greedy placement) vs
// sequential (random placement) repartition (Section 7.4).
//
// After the popularity shift of Fig. 16, the parallel scheme places each
// changed file's partitions on the least-loaded servers (Algorithm 2),
// while the sequential baseline re-places everything at random. We measure
// each server's expected read load Sum_i lambda_i * piece_bytes over the
// resulting layout.
//
// Expected shape: the greedy layout is tighter (lower imbalance factor).
#include <algorithm>
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "cluster/client.h"
#include "cluster/repartition_exec.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

constexpr Bytes kBytesPerFile = 1 * kMB;

struct Bed {
  Cluster cluster{kServers, gbps(1.0)};
  Master master;
  ThreadPool pool{4};
  Catalog catalog;
  std::vector<std::size_t> k;
  std::vector<std::vector<std::uint32_t>> servers;
};

void populate(Bed& bed, std::size_t n_files, Rng& rng) {
  bed.catalog = make_uniform_catalog(n_files, kBytesPerFile, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(bed.catalog, bed.cluster.bandwidths(), rng);
  bed.k = sp.partition_counts();
  SpClient client(bed.cluster, bed.master, bed.pool);
  std::vector<std::uint8_t> payload(kBytesPerFile, 0x5A);
  for (FileId f = 0; f < n_files; ++f) {
    client.write(f, payload, sp.placement(f).servers);
    bed.servers.push_back(sp.placement(f).servers);
  }
}

// Expected per-server read load (bytes/s) from the master's layout.
std::vector<double> expected_loads(const Bed& bed) {
  std::vector<double> loads(kServers, 0.0);
  for (FileId f : bed.master.file_ids()) {
    const auto meta = bed.master.peek(f);
    const double lambda = bed.catalog.file(f).request_rate;
    for (std::size_t i = 0; i < meta->servers.size(); ++i) {
      loads[meta->servers[i]] += lambda * static_cast<double>(meta->piece_sizes[i]);
    }
  }
  return loads;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;  // CI mode (tools/check.sh): smaller catalog
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t n_files = smoke ? 100 : 350;

  print_experiment_header(std::cout, "Fig. 18",
                          "Per-server expected read load after repartition: greedy "
                          "(parallel scheme) vs random (sequential scheme) placement, "
                          "350 files (100 under --smoke).");

  Rng rng(1800);
  Table t({"scheme", "min/avg", "median/avg", "max/avg", "imbalance_eta"});

  for (const bool greedy : {true, false}) {
    Bed bed;
    populate(bed, n_files, rng);
    bed.catalog.shuffle_popularities(rng);
    const auto plan = plan_repartition(bed.catalog, bed.cluster.bandwidths(), bed.k, bed.servers,
                                       ScaleFactorConfig{}, rng);
    if (greedy) {
      execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
    } else {
      execute_sequential_repartition(bed.cluster, bed.master, plan, gbps(1.0), rng);
    }
    auto loads = expected_loads(bed);
    const double eta = imbalance_factor(loads);
    std::sort(loads.begin(), loads.end());
    double avg = 0.0;
    for (double l : loads) avg += l;
    avg /= static_cast<double>(loads.size());
    t.add_row({std::string(greedy ? "Parallel (greedy placement)" : "Sequential (random)"),
               loads.front() / avg, loads[loads.size() / 2] / avg, loads.back() / avg, eta});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: the greedy least-loaded placement of Algorithm 2 yields a\n"
               "visibly tighter load distribution than random re-placement.\n";
  return 0;
}
