// Fig. 6: normalized network goodput vs number of partitions (Section 4.2).
//
// The paper places all partitions of a file on one server (so total link
// bandwidth is constant) and measures useful throughput as the partition
// count grows: ~20% loss at 20 partitions and ~40% at 100 on a 1 Gbps
// link; a 500 Mbps link degrades more gradually.
#include <iostream>

#include "bench_common.h"
#include "net/network_model.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 6",
                          "Normalized goodput vs number of partitions for 1 Gbps and "
                          "500 Mbps links (calibrated connection-overhead model).");

  const auto g1 = GoodputModel::calibrated(gbps(1.0));
  const auto g05 = GoodputModel::calibrated(mbps(500));

  Table t({"partitions", "goodput_1Gbps", "goodput_500Mbps"});
  for (std::size_t c : {1u, 2u, 5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    t.add_row({static_cast<long long>(c), g1.factor(c), g05.factor(c)});
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors: 1 Gbps goodput ~0.8 at 20 partitions and ~0.6 at 100;\n"
               "the 500 Mbps curve decays more gradually toward ~0.6-0.7 at 100.\n";
  return 0;
}
