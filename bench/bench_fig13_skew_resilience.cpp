// Fig. 13: mean and tail (95th) read latencies under skewed popularity
// (Section 7.3 "Skew Resilience").
//
// Setup per the paper: 500 x 100 MB files, Zipf 1.05, 30 cache servers
// (r3.2xlarge-like, 1 Gbps), aggregate rate swept 6..22 req/s, naturally
// occurring stragglers only. Cache space is sufficient for all schemes.
//
// Expected shape: SP-Cache consistently leads; vs EC-Cache it improves the
// mean by ~29-50% and the tail by ~22-55%, with wider margins vs selective
// replication (40-70% / 33-63%), growing as the rate rises.
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 13",
                          "Mean and 95th-percentile read latency vs aggregate request rate "
                          "for SP-Cache, EC-Cache, and selective replication.");

  Table t({"rate", "sp_mean", "ec_mean", "repl_mean", "sp_p95", "ec_p95", "repl_p95",
           "mean_improv_vs_ec_pct", "tail_improv_vs_ec_pct"});
  for (double rate : {6.0, 10.0, 14.0, 18.0, 22.0}) {
    const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, rate);
    SpCacheScheme sp;
    EcCacheScheme ec;
    SelectiveReplicationScheme sr;
    const auto r_sp = run_experiment(sp, cat, 9000, default_sim_config(61), 601);
    const auto r_ec = run_experiment(ec, cat, 9000, default_sim_config(61), 601);
    const auto r_sr = run_experiment(sr, cat, 9000, default_sim_config(61), 601);
    t.add_row({rate, r_sp.mean, r_ec.mean, r_sr.mean, r_sp.p95, r_ec.p95, r_sr.p95,
               latency_improvement_percent(r_ec.mean, r_sp.mean),
               latency_improvement_percent(r_ec.p95, r_sp.p95)});
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors: SP-Cache improves the mean by 29-50% and the tail by\n"
               "22-55% over EC-Cache (40-70% / 33-63% over selective replication), with\n"
               "the gap widening as the request rate surges. SP-Cache also uses 40% less\n"
               "memory than both baselines while doing so.\n";
  return 0;
}
