// Fig. 11: partition granularity chosen by SP-Cache across the popularity
// ranking (Section 7.2).
//
// Setup per the paper: 100 files of 100 MB; SP-Cache configures alpha with
// Algorithm 1 and splits file i into k_i = ceil(alpha * S_i * P_i) pieces.
//
// Expected shape: partition counts decay monotonically from the hottest
// file to the cold tail — the "vital few" are split finest. (Our network
// model rewards read parallelism more than the authors' EC2 fabric, so the
// elbow alpha splits deeper into the tail than the paper's top-30%; see
// EXPERIMENTS.md.)
#include <iostream>

#include "bench_common.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 11",
                          "Partition count and partition size per popularity rank "
                          "(100 x 100 MB files, Algorithm 1 alpha).");

  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  SpCacheScheme sp;
  Rng rng(1111);
  sp.place(cat, std::vector<Bandwidth>(kServers, gbps(1.0)), rng);

  Table t({"popularity_rank", "popularity", "load_MB", "partitions_k", "partition_size_MB"});
  for (std::size_t rank : {0u, 4u, 9u, 19u, 29u, 39u, 49u, 69u, 89u, 99u}) {
    const auto id = static_cast<FileId>(rank);
    const auto k = sp.partition_counts()[rank];
    t.add_row({static_cast<long long>(rank + 1), cat.popularity(id),
               cat.load(id) / static_cast<double>(kMB), static_cast<long long>(k),
               100.0 / static_cast<double>(k)});
  }
  t.print(std::cout);

  std::size_t split = 0;
  for (auto k : sp.partition_counts()) split += (k > 1) ? 1 : 0;
  std::cout << "\nalpha = " << sp.alpha() << "; files with k > 1: " << split << " / 100.\n"
            << "Paper shape: granularity strictly follows the load ranking; the paper's\n"
               "EC2 calibration left ~70% of files unsplit, our network model settles on\n"
               "a deeper elbow (see EXPERIMENTS.md calibration note).\n";
  return 0;
}
