// Shared harness for the per-figure benchmark binaries.
//
// Every bench reproduces one table or figure from the paper's evaluation
// (see DESIGN.md's per-experiment index). This header centralizes the
// cluster configuration of Section 7.1 — 30 cache servers, 1 Gbps links,
// Zipf popularity, Poisson clients — plus the run/measure/report plumbing,
// so each binary only states what differs from the default setup.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/scheme.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "workload/file_catalog.h"

namespace spcache::bench {

inline constexpr std::size_t kServers = 30;

// The Section 7.1 simulator configuration (r3.2xlarge-like: 1 Gbps links).
SimConfig default_sim_config(std::uint64_t seed, Bandwidth link = gbps(1.0));

struct ExperimentResult {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double cv = 0.0;
  double imbalance = 0.0;
  std::vector<double> server_loads;
  Sample latencies;
  // The same latencies folded into the obs fixed-geometry histogram; p50/
  // p95/p99 above are read off this snapshot, so bench percentiles and
  // ClusterObserver percentiles share one definition.
  obs::HistogramSnapshot latency_hist;
};

// Place the scheme on the default cluster and replay `n_requests` Poisson
// arrivals through the simulator.
ExperimentResult run_experiment(CachingScheme& scheme, const Catalog& catalog,
                                std::size_t n_requests, const SimConfig& config,
                                std::uint64_t seed);

// Modelled write latency for a WritePlan under the paper's sequential-write
// discipline (Section 7.8): encode (if any) + back-to-back transfers of all
// stores over the client NIC + per-store connection setup.
Seconds sequential_write_latency(const WritePlan& plan, Bandwidth client_link,
                                 Seconds setup_per_store);

// Machine-readable benchmark output, so future PRs can track curves (e.g.
// the concurrency-scaling numbers) across revisions. Writes
// `BENCH_<name>.json` in the working directory:
//   {"bench": "<name>", "rows": [{"k1": v1, "k2": v2, ...}, ...]}
// Values are doubles by default; a field built with text_field() is
// emitted as a JSON string instead (e.g. a scheme name). Field order
// within a row is preserved.
struct JsonField {
  std::string key;
  double value = 0.0;
  std::string text;       // used iff is_text
  bool is_text = false;
  JsonField() = default;
  JsonField(std::string k, double v) : key(std::move(k)), value(v) {}
};
JsonField text_field(std::string key, std::string text);
using JsonRow = std::vector<JsonField>;
// Returns the path written.
std::string write_json_report(const std::string& name, const std::vector<JsonRow>& rows);

// Append "<prefix>p50/p95/p99" fields read off an obs histogram snapshot —
// the standard way a bench records percentiles in its JSON report.
void append_percentiles(JsonRow& row, const std::string& prefix,
                        const obs::HistogramSnapshot& hist, double scale = 1.0);

}  // namespace spcache::bench
