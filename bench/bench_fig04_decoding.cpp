// Fig. 4: EC-Cache decoding overhead vs file size (Section 3.2).
//
// The paper measures the decode time of a (10,14) Reed-Solomon read
// normalized by the read latency: boxes at the 25/50/75th percentiles,
// whiskers at 5/95. For >=100 MB files the overhead stays above ~15%.
//
// We run the real GF(256) codec from src/erasure on real buffers (forcing
// two parity shards into every decode so the matrix-inversion path runs)
// and normalize by the modelled 1 Gbps read latency of the same file.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "erasure/rs_code.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Fig. 4",
                          "Decoding overhead of a (10,14) RS code vs file size: real codec "
                          "time normalized by the 1 Gbps read latency. Percentiles over "
                          "repeated decodes with randomly lost data shards.");

  const ReedSolomon rs(10, 14);
  Rng rng(404);
  const Bandwidth link = gbps(1.0);

  Table t({"file_size_MB", "p5", "p25", "p50", "p75", "p95"});
  for (Bytes mb : {1ull, 5ull, 10ull, 25ull, 50ull, 100ull}) {
    const Bytes size = mb * kMB;
    const auto data = random_bytes(size, rng);
    const auto shards = rs.encode(data);
    Sample overhead;
    const int trials = size >= 50 * kMB ? 5 : 9;
    for (int trial = 0; trial < trials; ++trial) {
      // Lose two random data shards; decode from 8 data + 2 parity.
      const auto lost = rng.sample_without_replacement(10, 2);
      std::vector<Shard> subset;
      for (const auto& s : shards) {
        if (s.index == lost[0] || s.index == lost[1]) continue;
        subset.push_back(s);
        if (subset.size() == 10) break;
      }
      const auto start = std::chrono::steady_clock::now();
      const auto decoded = rs.decode(subset, data.size());
      const double decode_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (decoded.size() != data.size()) return 1;  // defensive: corrupt decode
      const double read_s = static_cast<double>(size) / link;
      overhead.add(decode_s / (read_s + decode_s));
    }
    t.add_row({static_cast<long long>(mb), overhead.percentile(0.05), overhead.percentile(0.25),
               overhead.percentile(0.50), overhead.percentile(0.75), overhead.percentile(0.95)});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: overhead grows with file size and stays >= ~0.15 for\n"
               "files of 100 MB and larger on a 1 Gbps network.\n"
               "(Absolute values depend on codec throughput; the paper used ISA-L on\n"
               "8-core servers, we run a portable table-based codec — see DESIGN.md.)\n";
  return 0;
}
