// Fig. 15: compute-optimized cache servers (Section 7.3).
//
// Setup per the paper: c4.4xlarge-like servers — 1.4 Gbps links (40% more
// bandwidth) and roughly doubled coding throughput (AVX2/Turbo Boost).
//
// Expected shape: everyone gets faster, but the SP-vs-EC gap stays salient
// (paper: 39-47% mean / 40-53% tail improvement) because EC-Cache still
// pays decode time; SP-Cache's mean stays below ~0.5 s and its tail below
// ~0.6 s. Selective replication lags far behind (3.3-3.8x mean).
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 15",
                          "Mean and 95th-percentile latency on compute-optimized servers "
                          "(1.4 Gbps links, 2x coding throughput).");

  const Bandwidth link = gbps(1.4);

  Table t({"rate", "sp_mean", "ec_mean", "repl_mean", "sp_p95", "ec_p95", "repl_p95",
           "mean_improv_vs_ec_pct"});
  for (double rate : {6.0, 10.0, 14.0, 18.0, 22.0}) {
    const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, rate);
    SpCacheScheme sp;
    EcCacheConfig ec_cfg;
    ec_cfg.codec = CodecModel::compute_optimized();
    EcCacheScheme ec(ec_cfg);
    SelectiveReplicationScheme sr;
    const auto r_sp = run_experiment(sp, cat, 9000, default_sim_config(81, link), 801);
    const auto r_ec = run_experiment(ec, cat, 9000, default_sim_config(81, link), 801);
    const auto r_sr = run_experiment(sr, cat, 9000, default_sim_config(81, link), 801);
    t.add_row({rate, r_sp.mean, r_ec.mean, r_sr.mean, r_sp.p95, r_ec.p95, r_sr.p95,
               latency_improvement_percent(r_ec.mean, r_sp.mean)});
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors: SP-Cache still beats EC-Cache by 39-47% (mean) and\n"
               "40-53% (tail) despite the faster codec; SP-Cache's own latency drops\n"
               "with the higher bandwidth (mean < ~0.5 s).\n";
  return 0;
}
