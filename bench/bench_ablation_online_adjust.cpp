// Ablation: online partition adjustment vs full repartition (Section 8
// "Short-Term Popularity Variation").
//
// Scenario: one mid-ranked file bursts (its request rate jumps 50x) between
// two periodic re-balancing epochs. We compare the two reactions on the
// threaded cluster:
//   (a) online adjust — split the bursting file's existing partitions in a
//       distributed manner (only partition halves move);
//   (b) full parallel repartition — Algorithm 1 + Algorithm 2 over the
//       whole catalog.
// Metrics: data moved, modelled reaction time, and the bursting file's
// resulting partition count.
#include <iostream>

#include "bench_common.h"
#include "cluster/client.h"
#include "cluster/online_adjust.h"
#include "cluster/repartition_exec.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

constexpr Bytes kFileSize = 2 * kMB;
constexpr std::size_t kFiles = 150;
constexpr FileId kBurstFile = 40;

struct Bed {
  Cluster cluster{kServers, gbps(1.0)};
  Master master;
  ThreadPool pool{4};
  Catalog catalog;
  SpCacheScheme sp;

  void populate(Rng& rng) {
    catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
    sp.place(catalog, cluster.bandwidths(), rng);
    SpClient client(cluster, master, pool);
    std::vector<std::uint8_t> payload(kFileSize, 0x42);
    for (FileId f = 0; f < kFiles; ++f) client.write(f, payload, sp.placement(f).servers);
  }

  Catalog burst_catalog() const {
    auto infos = catalog.files();
    infos[kBurstFile].request_rate *= 50.0;  // the burst
    return Catalog(std::move(infos));
  }
};

}  // namespace

int main() {
  print_experiment_header(std::cout, "Ablation: online adjustment",
                          "Reaction to a 50x burst on one file: distributed split of its "
                          "existing partitions vs full parallel repartition.");

  Table t({"reaction", "files_touched", "MB_moved", "modelled_time_s", "burst_file_k"});

  {
    Bed bed;
    Rng rng(3200);
    bed.populate(rng);
    const auto live = bed.burst_catalog();
    OnlineAdjustConfig cfg;
    cfg.alpha = bed.sp.alpha();  // keep the epoch's scale factor
    cfg.max_ops_per_file = 32;
    const auto plan = plan_online_adjust(live, bed.master, kServers, cfg);
    const auto stats = execute_online_adjust(bed.cluster, bed.master, plan);
    t.add_row({std::string("Online split/merge"),
               static_cast<long long>(plan.splits.empty() && plan.merges.empty() ? 0 : 1),
               static_cast<double>(stats.bytes_moved) / static_cast<double>(kMB),
               stats.modelled_time,
               static_cast<long long>(bed.master.peek(kBurstFile)->partitions())});
  }
  {
    Bed bed;
    Rng rng(3200);
    bed.populate(rng);
    const auto live = bed.burst_catalog();
    std::vector<std::vector<std::uint32_t>> old_servers;
    for (const auto& p : bed.sp.placements()) old_servers.push_back(p.servers);
    const auto plan = plan_repartition(live, bed.cluster.bandwidths(),
                                       bed.sp.partition_counts(), old_servers,
                                       ScaleFactorConfig{}, rng);
    const auto stats = execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
    t.add_row({std::string("Full parallel repartition"),
               static_cast<long long>(stats.files_touched),
               static_cast<double>(stats.bytes_moved) / static_cast<double>(kMB),
               stats.modelled_time,
               static_cast<long long>(bed.master.peek(kBurstFile)->partitions())});
  }
  // The paper's comparison point: EC-Cache must collect ALL of the file's
  // partitions at the master and re-encode, then scatter k+parity anew;
  // selective replication adds 1x size per extra replica.
  {
    const double s_mb = static_cast<double>(kFileSize) / static_cast<double>(kMB);
    const double moved = s_mb + 1.4 * s_mb;  // collect S + scatter 1.4 S
    t.add_row({std::string("EC-Cache re-encode (modelled)"), 1LL, moved,
               moved * static_cast<double>(kMB) / gbps(1.0), 10LL});
  }
  t.print(std::cout);
  std::cout << "\nReading the table: the online reaction needs no global Algorithm 1 run\n"
               "and touches only the bursting file; each split ships half of one\n"
               "existing partition, so a LARGE granularity jump (2 -> ~10 here) can move\n"
               "about as many bytes as a one-shot re-split — but unlike EC-Cache's\n"
               "collect-everything re-encode it is fully distributed and incremental\n"
               "(each op is independently usable, so the file gets faster after the\n"
               "first split, not only at the end).\n";
  return 0;
}
