// Microbenchmarks (google-benchmark): throughput of the building blocks —
// GF(256) slice operations, Reed-Solomon encode/decode, CRC-32, the
// fork-join bound solver, and the LRU — so regressions in the substrate are
// visible independently of the experiment harnesses.
//
// `bench_micro --smoke` skips google-benchmark and runs the data-plane
// gates instead (tools/check.sh `kernels` stage): RS(8,11) encode GB/s per
// SIMD level with bit-identical outputs, an AVX2 absolute floor, and an
// AVX2-over-scalar speedup floor. Exits non-zero when a gate fails.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "common/crc32.h"
#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/rs_code.h"
#include "math/forkjoin_bound.h"
#include "math/scale_factor.h"
#include "rpc/serialize.h"
#include "sim/lru_cache.h"
#include "simd/simd.h"
#include "workload/file_catalog.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

void BM_Gf256MulAddSlice(benchmark::State& state) {
  Rng rng(1);
  const auto src = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<std::uint8_t> dst(src.size(), 0);
  for (auto _ : state) {
    gf256::mul_add_slice(dst, src, 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Gf256MulAddSlice)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_RsEncode(benchmark::State& state) {
  Rng rng(2);
  const ReedSolomon rs(10, 14);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto shards = rs.encode(data);
    benchmark::DoNotOptimize(shards.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RsEncode)->Arg(1 * 1000 * 1000)->Arg(10 * 1000 * 1000);

void BM_RsDecodeWithParity(benchmark::State& state) {
  Rng rng(3);
  const ReedSolomon rs(10, 14);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  auto shards = rs.encode(data);
  // Lose two data shards: decode from 8 data + 2 parity.
  std::vector<Shard> subset(shards.begin() + 2, shards.begin() + 12);
  for (auto _ : state) {
    auto out = rs.decode(subset, data.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RsDecodeWithParity)->Arg(1 * 1000 * 1000)->Arg(10 * 1000 * 1000);

void BM_Crc32(benchmark::State& state) {
  Rng rng(4);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(1024 * 1024);

// --- Per-level kernel benches (range(1) selects the SIMD tier) ----------

bool select_level(benchmark::State& state, simd::Level& level) {
  level = static_cast<simd::Level>(state.range(1));
  if (!simd::level_supported(level)) {
    state.SkipWithError("SIMD level not supported on this host");
    return false;
  }
  state.SetLabel(simd::level_name(level));
  return true;
}

void BM_KernelGf256MulAdd(benchmark::State& state) {
  simd::Level level;
  if (!select_level(state, level)) return;
  const auto& k = simd::kernels_for(level);
  Rng rng(8);
  const auto src = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<std::uint8_t> dst(src.size(), 0);
  for (auto _ : state) {
    k.gf256_mul_add(dst.data(), src.data(), src.size(), 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_KernelGf256MulAdd)
    ->Args({1024 * 1024, 0})
    ->Args({1024 * 1024, 1})
    ->Args({1024 * 1024, 2});

void BM_KernelCrc32(benchmark::State& state) {
  simd::Level level;
  if (!select_level(state, level)) return;
  const auto& k = simd::kernels_for(level);
  Rng rng(9);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.crc32_update(0xFFFFFFFFu, data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_KernelCrc32)
    ->Args({1024 * 1024, 0})
    ->Args({1024 * 1024, 1})
    ->Args({1024 * 1024, 2});

// Fused copy+CRC against the naive memcpy-then-rescan it replaced on the
// put/reassembly paths; range(1): 0 = fused kernel, 1 = two-pass baseline.
void BM_Crc32Copy(benchmark::State& state) {
  Rng rng(10);
  const auto src = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<std::uint8_t> dst(src.size());
  const bool fused = state.range(1) == 0;
  for (auto _ : state) {
    std::uint32_t crc;
    if (fused) {
      crc = crc32_copy(dst, src);
    } else {
      std::memcpy(dst.data(), src.data(), src.size());
      crc = crc32(dst);
    }
    benchmark::DoNotOptimize(crc);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(fused ? "fused" : "memcpy+crc");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Crc32Copy)
    ->Args({64 * 1024, 0})
    ->Args({64 * 1024, 1})
    ->Args({1024 * 1024, 0})
    ->Args({1024 * 1024, 1});

void BM_ForkJoinBound(benchmark::State& state) {
  std::vector<QueueStat> stats(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < stats.size(); ++i) {
    stats[i] = QueueStat{0.1 + 0.01 * static_cast<double>(i), 0.02};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fork_join_upper_bound(stats));
  }
}
BENCHMARK(BM_ForkJoinBound)->Arg(2)->Arg(10)->Arg(30);

void BM_ScaleFactorSearch(benchmark::State& state) {
  const auto cat = make_uniform_catalog(static_cast<std::size_t>(state.range(0)), 100 * kMB,
                                        1.05, 8.0);
  const std::vector<Bandwidth> bw(30, gbps(1.0));
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(find_scale_factor(cat, bw, ScaleFactorConfig{}, rng).alpha);
  }
}
BENCHMARK(BM_ScaleFactorSearch)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

// Serialization of a kGetBlockMulti-style reply (count + per-piece tag +
// length-prefixed bytes) with and without the up-front reserve() the RPC
// hot paths now use — the delta is the cost of the O(log n) doubling
// reallocations reserve() removes.
void BM_BufferWriterSerialize(benchmark::State& state) {
  Rng rng(7);
  constexpr std::size_t kPieces = 8;
  const auto piece = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  const bool reserve = state.range(1) != 0;
  for (auto _ : state) {
    rpc::BufferWriter w;
    if (reserve) w.reserve(4 + kPieces * (1 + 4 + piece.size()));
    w.u32(kPieces);
    for (std::size_t i = 0; i < kPieces; ++i) {
      w.u8(1);
      w.bytes(piece);
    }
    auto buf = w.take();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPieces * piece.size()));
}
BENCHMARK(BM_BufferWriterSerialize)
    ->Args({64 * 1024, 0})
    ->Args({64 * 1024, 1})
    ->Args({512 * 1024, 0})
    ->Args({512 * 1024, 1});

void BM_LruAccess(benchmark::State& state) {
  const auto cat = make_uniform_catalog(10000, 100, 1.1, 1.0);
  Rng rng(6);
  LruCache lru(200000);
  for (auto _ : state) {
    const FileId f = cat.sample_file(rng);
    benchmark::DoNotOptimize(lru.access(f, 100));
  }
}
BENCHMARK(BM_LruAccess);

// --- Smoke gates (tools/check.sh `kernels` stage) -----------------------

double best_encode_seconds(const ReedSolomon& rs, std::span<const std::uint8_t> data,
                           std::span<const std::span<std::uint8_t>> shards) {
  using clock = std::chrono::steady_clock;
  double best = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = clock::now();
    rs.encode_into(data, shards);
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// RS(8,11) encode throughput per SIMD level on one core, with outputs
// memcmp'd against the scalar tier. Gates (when AVX2 is available):
// AVX2 >= 4 GB/s absolute and >= 2x the scalar tier. Returns exit status.
int run_smoke() {
  constexpr std::size_t kK = 8, kN = 11;
  constexpr std::size_t kDataBytes = 32 * 1024 * 1024;
  const ReedSolomon rs(kK, kN);
  Rng rng(42);
  const auto data = random_bytes(kDataBytes, rng);
  const std::size_t shard_len = (kDataBytes + kK - 1) / kK;

  std::vector<std::vector<std::uint8_t>> shard_bufs(kN, std::vector<std::uint8_t>(shard_len));
  std::vector<std::span<std::uint8_t>> shard_spans(kN);
  for (std::size_t i = 0; i < kN; ++i) shard_spans[i] = shard_bufs[i];
  const std::span<const std::span<std::uint8_t>> shards(shard_spans);

  const auto restore = simd::detected_level();
  double gbps_by_level[3] = {0.0, 0.0, 0.0};
  std::vector<std::vector<std::uint8_t>> scalar_ref;
  bool identical = true;

  std::printf("smoke: rs(%zu,%zu) encode, %zu MiB, single core\n", kK, kN,
              kDataBytes / (1024 * 1024));
  for (const auto level : {simd::Level::kScalar, simd::Level::kSsse3, simd::Level::kAvx2}) {
    if (!simd::level_supported(level)) {
      std::printf("  %-6s: not supported on this host\n", simd::level_name(level));
      continue;
    }
    simd::force_level(level);
    rs.encode_into(data, shards);  // warm
    const double secs = best_encode_seconds(rs, data, shards);
    gbps_by_level[static_cast<int>(level)] = static_cast<double>(kDataBytes) / secs / 1e9;
    bool same = true;
    if (level == simd::Level::kScalar) {
      scalar_ref = shard_bufs;  // reference outputs for the identity check
    } else {
      for (std::size_t i = 0; i < kN && same; ++i) {
        same = std::memcmp(shard_bufs[i].data(), scalar_ref[i].data(), shard_len) == 0;
      }
      identical = identical && same;
    }
    std::printf("  %-6s: %6.2f GB/s%s\n", simd::level_name(level),
                gbps_by_level[static_cast<int>(level)],
                level == simd::Level::kScalar ? "" : (same ? "  (bit-identical)" : "  (MISMATCH)"));
  }
  simd::force_level(restore);

  bool ok = identical;
  if (!identical) std::printf("gate FAIL: levels disagree on encoded bytes\n");
  const double scalar = gbps_by_level[0];
  const double avx2 = gbps_by_level[2];
  if (simd::level_supported(simd::Level::kAvx2)) {
    const bool floor_ok = avx2 >= 4.0;
    const bool speedup_ok = avx2 >= 2.0 * scalar;
    std::printf("gate avx2 >= 4 GB/s: %s (%.2f)\n", floor_ok ? "PASS" : "FAIL", avx2);
    std::printf("gate avx2 >= 2x scalar: %s (%.2fx)\n", speedup_ok ? "PASS" : "FAIL",
                scalar > 0 ? avx2 / scalar : 0.0);
    ok = ok && floor_ok && speedup_ok;
  } else {
    std::printf("gates: AVX2 unavailable, identity check only\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace spcache

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return spcache::run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
