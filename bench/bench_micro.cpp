// Microbenchmarks (google-benchmark): throughput of the building blocks —
// GF(256) slice operations, Reed-Solomon encode/decode, CRC-32, the
// fork-join bound solver, and the LRU — so regressions in the substrate are
// visible independently of the experiment harnesses.
#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/rs_code.h"
#include "math/forkjoin_bound.h"
#include "math/scale_factor.h"
#include "rpc/serialize.h"
#include "sim/lru_cache.h"
#include "workload/file_catalog.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

void BM_Gf256MulAddSlice(benchmark::State& state) {
  Rng rng(1);
  const auto src = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<std::uint8_t> dst(src.size(), 0);
  for (auto _ : state) {
    gf256::mul_add_slice(dst, src, 0xA7);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Gf256MulAddSlice)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_RsEncode(benchmark::State& state) {
  Rng rng(2);
  const ReedSolomon rs(10, 14);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto shards = rs.encode(data);
    benchmark::DoNotOptimize(shards.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RsEncode)->Arg(1 * 1000 * 1000)->Arg(10 * 1000 * 1000);

void BM_RsDecodeWithParity(benchmark::State& state) {
  Rng rng(3);
  const ReedSolomon rs(10, 14);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  auto shards = rs.encode(data);
  // Lose two data shards: decode from 8 data + 2 parity.
  std::vector<Shard> subset(shards.begin() + 2, shards.begin() + 12);
  for (auto _ : state) {
    auto out = rs.decode(subset, data.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RsDecodeWithParity)->Arg(1 * 1000 * 1000)->Arg(10 * 1000 * 1000);

void BM_Crc32(benchmark::State& state) {
  Rng rng(4);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Arg(1024 * 1024);

void BM_ForkJoinBound(benchmark::State& state) {
  std::vector<QueueStat> stats(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < stats.size(); ++i) {
    stats[i] = QueueStat{0.1 + 0.01 * static_cast<double>(i), 0.02};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fork_join_upper_bound(stats));
  }
}
BENCHMARK(BM_ForkJoinBound)->Arg(2)->Arg(10)->Arg(30);

void BM_ScaleFactorSearch(benchmark::State& state) {
  const auto cat = make_uniform_catalog(static_cast<std::size_t>(state.range(0)), 100 * kMB,
                                        1.05, 8.0);
  const std::vector<Bandwidth> bw(30, gbps(1.0));
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(find_scale_factor(cat, bw, ScaleFactorConfig{}, rng).alpha);
  }
}
BENCHMARK(BM_ScaleFactorSearch)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

// Serialization of a kGetBlockMulti-style reply (count + per-piece tag +
// length-prefixed bytes) with and without the up-front reserve() the RPC
// hot paths now use — the delta is the cost of the O(log n) doubling
// reallocations reserve() removes.
void BM_BufferWriterSerialize(benchmark::State& state) {
  Rng rng(7);
  constexpr std::size_t kPieces = 8;
  const auto piece = random_bytes(static_cast<std::size_t>(state.range(0)), rng);
  const bool reserve = state.range(1) != 0;
  for (auto _ : state) {
    rpc::BufferWriter w;
    if (reserve) w.reserve(4 + kPieces * (1 + 4 + piece.size()));
    w.u32(kPieces);
    for (std::size_t i = 0; i < kPieces; ++i) {
      w.u8(1);
      w.bytes(piece);
    }
    auto buf = w.take();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPieces * piece.size()));
}
BENCHMARK(BM_BufferWriterSerialize)
    ->Args({64 * 1024, 0})
    ->Args({64 * 1024, 1})
    ->Args({512 * 1024, 0})
    ->Args({512 * 1024, 1});

void BM_LruAccess(benchmark::State& state) {
  const auto cat = make_uniform_catalog(10000, 100, 1.1, 1.0);
  Rng rng(6);
  LruCache lru(200000);
  for (auto _ : state) {
    const FileId f = cat.sample_file(rng);
    benchmark::DoNotOptimize(lru.access(f, 100));
  }
}
BENCHMARK(BM_LruAccess);

}  // namespace
}  // namespace spcache

BENCHMARK_MAIN();
