// Fig. 8: the fork-join upper bound vs the measured mean latency across the
// scale factor alpha (Sections 5.3 and 7.2).
//
// Setup per the paper: 300 files of 100 MB, aggregate rate 8, 30 servers.
// We sweep alpha over a wide geometric grid around Algorithm 1's pick and
// report (a) the analytic upper bound and (b) the simulated mean latency of
// SP-Cache pinned to that alpha.
//
// Expected shape: both curves dip steeply to an elbow and flatten/rise for
// large alpha; the bound tracks the measurement, with occasional
// measurement excursions above it (the simulator includes effects the
// model omits).
#include <iostream>

#include "bench_common.h"
#include "core/sp_cache.h"
#include "math/scale_factor.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 8",
                          "Analytic upper bound vs simulated mean read latency across the "
                          "scale factor alpha (300 x 100 MB files, rate 8).");

  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.05, 8.0);
  const std::vector<Bandwidth> bw(kServers, gbps(1.0));

  // Algorithm 1's pick anchors the sweep.
  ScaleFactorConfig search_cfg;
  Rng search_rng(808);
  const auto picked = find_scale_factor(cat, bw, search_cfg, search_rng);

  Table t({"alpha_rel_to_elbow", "upper_bound_s", "simulated_mean_s", "hottest_k"});
  for (double mult : {0.015625, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double alpha = picked.alpha * mult;
    const double bound = latency_bound_for_alpha(cat, bw, alpha, search_cfg, 909);

    SpCacheConfig sp_cfg;
    sp_cfg.fixed_alpha = alpha;
    SpCacheScheme sp(sp_cfg);
    auto sim_cfg = default_sim_config(41);
    const auto r = run_experiment(sp, cat, 8000, sim_cfg, 411);

    const auto k = partition_counts_for_alpha(cat, alpha, kServers);
    t.add_row({mult, bound, r.mean, static_cast<long long>(k[0])});
  }
  t.print(std::cout);
  std::cout << "\nAlgorithm 1 settled on alpha = " << picked.alpha << " (bound "
            << picked.bound << " s) after " << picked.iterations << " iterations.\n"
            << "Paper shape: steep dip to an elbow, then a plateau/rise; the bound\n"
               "closely tracks the measured mean.\n";
  return 0;
}
