// Adversarial scenario suite: closed-loop alpha adaptation vs frozen alpha.
//
// Runs every scripted scenario (diurnal drift, flash crowd, correlated
// rack loss, multi-tenant interference) twice through the ScenarioDriver:
// once with the AlphaController closing the observe -> decide -> act loop
// online, once with alpha frozen at the offline Algorithm 1 value — the
// "yesterday's re-balance" control arm. Per phase it reports the Eq. 15
// load imbalance over the phase's served-bytes delta, modelled latency
// percentiles, degradation/retry counts, and the controller's activity.
//
// Output: console table + BENCH_scenarios.json (one row per
// scenario x phase x arm, plus a "worst" summary row per scenario x arm).
//
// `--smoke` shrinks every phase for CI runtimes and turns the report into
// a gate for tools/check.sh's scenario stage:
//   * zero read failures and zero bit-exactness mismatches in both arms;
//   * with the adaptive controller, every phase's eta stays under
//     kEtaGate — including the phases scripted to wreck the layout;
//   * modelled p99 stays under kP99GateMs in every adaptive phase, even
//     the rack-loss window where reads fail over to stable storage;
//   * across the whole suite, the adaptive arm's worst-phase eta beats
//     the frozen arm's worst-phase eta — the closed loop must pay for
//     itself exactly where the frozen layout is worst.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "scenario/driver.h"
#include "scenario/script.h"

namespace spcache::bench {
namespace {

constexpr std::size_t kScenarioServers = 10;
constexpr std::size_t kSmokeRequests = 280;

// Smoke gates, tuned against the deterministic smoke-size runs (the
// scripts are seeded, so these are replay-stable, with headroom for the
// grid granularity of Algorithm 1's 1.5x alpha steps).
constexpr double kEtaGate = 2.0;
constexpr double kP99GateMs = 25.0;

scenario::ScenarioScript shrink(scenario::ScenarioScript script, std::size_t requests) {
  for (auto& phase : script.phases) {
    phase.requests = requests;
    if (phase.kill_hot_holders) {
      phase.kill_at = requests / 8;
      phase.repair_at = requests / 2;
    }
  }
  return script;
}

scenario::ScenarioReport run_arm(const scenario::ScenarioScript& script, bool adaptive) {
  scenario::ScenarioDriverConfig config;
  config.n_servers = kScenarioServers;
  config.threads = 1;  // deterministic: the gates replay exactly
  config.adaptive = adaptive;
  scenario::ScenarioDriver driver(script, config);
  return driver.run(nullptr, nullptr);
}

JsonRow phase_row(const scenario::ScenarioReport& report, const scenario::PhaseReport& phase) {
  JsonRow row{text_field("scenario", report.scenario),
              text_field("phase", phase.name),
              {"adaptive", report.adaptive ? 1.0 : 0.0},
              {"requests", static_cast<double>(phase.requests)},
              {"failures", static_cast<double>(phase.failures)},
              {"mismatches", static_cast<double>(phase.mismatches)},
              {"eta", phase.eta},
              {"p50_ms", phase.p50_ms},
              {"p99_ms", phase.p99_ms},
              {"retries", static_cast<double>(phase.retries)},
              {"degraded_reads", static_cast<double>(phase.degraded_reads)},
              {"triggers", static_cast<double>(phase.triggers)},
              {"adaptations", static_cast<double>(phase.adaptations)},
              {"splits", static_cast<double>(phase.splits)},
              {"merges", static_cast<double>(phase.merges)},
              {"bytes_moved", static_cast<double>(phase.bytes_moved)},
              {"alpha_end", phase.alpha_end},
              {"kills", static_cast<double>(phase.kills)},
              {"repairs", static_cast<double>(phase.repairs)},
              {"hot_partitions_start", static_cast<double>(phase.hot_partitions_start)},
              {"hot_partitions_end", static_cast<double>(phase.hot_partitions_end)}};
  return row;
}

}  // namespace
}  // namespace spcache::bench

int main(int argc, char** argv) {
  using namespace spcache;
  using namespace spcache::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_experiment_header(
      std::cout, "Adversarial scenarios",
      "Scripted adversarial workloads (diurnal drift, flash crowd, correlated "
      "rack loss, multi-tenant interference) with the online AlphaController "
      "closing the loop vs alpha frozen at the offline Algorithm 1 value "
      "(10 servers, 1 Gbps links, deterministic seeds).");

  auto scripts = scenario::all_scenarios(kScenarioServers);
  if (smoke) {
    for (auto& script : scripts) script = shrink(std::move(script), kSmokeRequests);
  }

  Table table({"scenario", "phase", "arm", "eta", "p50_ms", "p99_ms", "degraded", "retries",
               "splits", "adapts", "hot_parts", "alpha_end"});
  std::vector<JsonRow> rows;
  std::vector<std::string> violations;
  double adaptive_worst_eta = 0.0;
  double frozen_worst_eta = 0.0;

  for (const auto& script : scripts) {
    const auto adaptive = run_arm(script, true);
    const auto frozen = run_arm(script, false);
    for (const auto* report : {&adaptive, &frozen}) {
      const char* arm = report->adaptive ? "adaptive" : "frozen";
      for (const auto& phase : report->phases) {
        table.add_row({report->scenario, phase.name, std::string(arm), phase.eta, phase.p50_ms,
                       phase.p99_ms, static_cast<double>(phase.degraded_reads),
                       static_cast<double>(phase.retries), static_cast<double>(phase.splits),
                       static_cast<double>(phase.adaptations),
                       static_cast<double>(phase.hot_partitions_end), phase.alpha_end});
        rows.push_back(phase_row(*report, phase));
      }
      JsonRow worst{text_field("scenario", report->scenario), text_field("phase", "worst"),
                    {"adaptive", report->adaptive ? 1.0 : 0.0},
                    {"eta", report->worst_eta()},
                    {"p99_ms", report->worst_p99_ms()},
                    {"failures", static_cast<double>(report->total_failures())},
                    {"mismatches", static_cast<double>(report->total_mismatches())}};
      rows.push_back(std::move(worst));
    }

    adaptive_worst_eta = std::max(adaptive_worst_eta, adaptive.worst_eta());
    frozen_worst_eta = std::max(frozen_worst_eta, frozen.worst_eta());

    // Invariants gated in smoke mode (reported in full mode too).
    for (const auto* report : {&adaptive, &frozen}) {
      const char* arm = report->adaptive ? "adaptive" : "frozen";
      if (report->total_failures() != 0) {
        violations.push_back(report->scenario + "/" + arm + ": " +
                             std::to_string(report->total_failures()) + " read failures");
      }
      if (report->total_mismatches() != 0) {
        violations.push_back(report->scenario + "/" + arm + ": " +
                             std::to_string(report->total_mismatches()) + " byte mismatches");
      }
    }
    for (const auto& phase : adaptive.phases) {
      if (phase.eta > kEtaGate) {
        violations.push_back(adaptive.scenario + "/" + phase.name + ": adaptive eta " +
                             std::to_string(phase.eta) + " > gate " + std::to_string(kEtaGate));
      }
      if (phase.p99_ms > kP99GateMs) {
        violations.push_back(adaptive.scenario + "/" + phase.name + ": adaptive p99 " +
                             std::to_string(phase.p99_ms) + " ms > gate " +
                             std::to_string(kP99GateMs) + " ms");
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nworst-phase eta across the suite: adaptive " << adaptive_worst_eta
            << " vs frozen " << frozen_worst_eta << "\n";
  if (!(adaptive_worst_eta < frozen_worst_eta)) {
    violations.push_back("adaptive worst-phase eta " + std::to_string(adaptive_worst_eta) +
                         " does not beat frozen " + std::to_string(frozen_worst_eta));
  }

  const auto path = write_json_report("scenarios", rows);
  std::cout << "wrote " << path << "\n";

  if (smoke) {
    if (!violations.empty()) {
      std::cout << "\nSMOKE GATE FAILURES:\n";
      for (const auto& v : violations) std::cout << "  " << v << "\n";
      return 1;
    }
    std::cout << "smoke gates passed: eta <= " << kEtaGate << " and p99 <= " << kP99GateMs
              << " ms in every adaptive phase; adaptive beats frozen on worst-phase eta\n";
  } else if (!violations.empty()) {
    std::cout << "\nnote (not gated outside --smoke):\n";
    for (const auto& v : violations) std::cout << "  " << v << "\n";
  }
  return 0;
}
