// Fig. 19: resilience to injected stragglers (Section 7.5).
//
// Setup per the paper: the Fig. 13 cluster with *intensive* stragglers —
// every partition read is slowed with probability 0.05 by a factor drawn
// from the Bing-profile distribution.
//
// Expected shape: SP-Cache keeps its mean-latency lead (up to ~40% over
// EC-Cache, ~53% over replication). In the tail, SP-Cache can trail the
// redundant baselines slightly at LOW rates (reading from many servers
// raises the chance of hitting a straggler; late binding and replica choice
// dodge them), but once the rate rises the hot-spot congestion dominates
// and SP-Cache's tail wins too (up to ~41% / ~55%).
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 19",
                          "Mean and 95th-percentile latency with injected stragglers "
                          "(p = 0.05 per partition read, Bing-like slowdown profile).");

  Table t({"rate", "sp_mean", "ec_mean", "repl_mean", "sp_p95", "ec_p95", "repl_p95"});
  for (double rate : {6.0, 10.0, 14.0, 18.0, 22.0}) {
    const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, rate);
    auto make_cfg = [] {
      auto cfg = default_sim_config(91);
      cfg.stragglers = StragglerModel::bing(0.05);
      return cfg;
    };
    SpCacheScheme sp;
    EcCacheScheme ec;
    SelectiveReplicationScheme sr;
    const auto r_sp = run_experiment(sp, cat, 9000, make_cfg(), 901);
    const auto r_ec = run_experiment(ec, cat, 9000, make_cfg(), 901);
    const auto r_sr = run_experiment(sr, cat, 9000, make_cfg(), 901);
    t.add_row({rate, r_sp.mean, r_ec.mean, r_sr.mean, r_sp.p95, r_ec.p95, r_sr.p95});
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors: despite being redundancy-free, SP-Cache cuts the mean by\n"
               "up to 40% (53%) vs EC-Cache (replication); its tail may trail slightly\n"
               "at low rates but wins by up to 41% (55%) as the load grows.\n";
  return 0;
}
