#include "bench_common.h"

#include <fstream>
#include <sstream>

#include "workload/arrivals.h"

namespace spcache::bench {

SimConfig default_sim_config(std::uint64_t seed, Bandwidth link) {
  SimConfig cfg;
  cfg.n_servers = kServers;
  cfg.bandwidth = {link};
  cfg.goodput = GoodputModel::calibrated(link);
  cfg.seed = seed;
  return cfg;
}

ExperimentResult run_experiment(CachingScheme& scheme, const Catalog& catalog,
                                std::size_t n_requests, const SimConfig& config,
                                std::uint64_t seed) {
  Rng place_rng(seed);
  std::vector<Bandwidth> bw(config.n_servers,
                            config.bandwidth.empty() ? gbps(1.0) : config.bandwidth.front());
  scheme.place(catalog, bw, place_rng);

  Rng arrival_rng(seed + 1);
  const auto arrivals = generate_poisson_arrivals(catalog, n_requests, arrival_rng);
  Simulation sim(config);
  auto result = sim.run(arrivals, [&scheme](FileId f, Rng& r) { return scheme.plan_read(f, r); });

  ExperimentResult out;
  out.mean = result.mean_latency();
  out.cv = result.cv();
  out.imbalance = result.imbalance();
  out.server_loads = result.server_bytes;
  out.latencies = std::move(result.latencies);
  // Fold the raw latencies into the obs histogram and read the reported
  // percentiles off its snapshot — one percentile definition across the
  // benches and the live ClusterObserver.
  obs::LatencyHistogram hist;
  for (const double v : out.latencies.values()) hist.record(v);
  out.latency_hist = hist.snapshot();
  out.p50 = out.latency_hist.percentile(0.50);
  out.p95 = out.latency_hist.percentile(0.95);
  out.p99 = out.latency_hist.percentile(0.99);
  return out;
}

Seconds sequential_write_latency(const WritePlan& plan, Bandwidth client_link,
                                 Seconds setup_per_store) {
  Seconds t = plan.pre_process;
  for (const auto& store : plan.stores) {
    t += setup_per_store + static_cast<double>(store.bytes) / client_link;
  }
  return t;
}

JsonField text_field(std::string key, std::string text) {
  JsonField f;
  f.key = std::move(key);
  f.text = std::move(text);
  f.is_text = true;
  return f;
}

std::string write_json_report(const std::string& name, const std::vector<JsonRow>& rows) {
  const std::string path = "BENCH_" + name + ".json";
  std::ostringstream out;
  out.precision(12);
  out << "{\"bench\": \"" << name << "\", \"rows\": [";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << (r == 0 ? "" : ", ") << "{";
    for (std::size_t f = 0; f < rows[r].size(); ++f) {
      const auto& field = rows[r][f];
      out << (f == 0 ? "" : ", ") << "\"" << field.key << "\": ";
      if (field.is_text) {
        out << "\"" << field.text << "\"";
      } else {
        out << field.value;
      }
    }
    out << "}";
  }
  out << "]}\n";
  std::ofstream file(path);
  file << out.str();
  return path;
}

void append_percentiles(JsonRow& row, const std::string& prefix,
                        const obs::HistogramSnapshot& hist, double scale) {
  row.push_back({prefix + "p50", hist.percentile(0.50) * scale});
  row.push_back({prefix + "p95", hist.percentile(0.95) * scale});
  row.push_back({prefix + "p99", hist.percentile(0.99) * scale});
}

}  // namespace spcache::bench
