// Fig. 2 + Table 1: the diminishing benefits of caching under load
// imbalance (Section 2.2).
//
// Setup per the paper: 30 m4.large cache servers (0.8 Gbps), 50 files of
// 40 MB, Zipf(1.1) popularity, aggregate request rate swept 5..10 req/s.
// "Without caching" spills files to local disk; disk+contention throughput
// is two orders of magnitude below memory speed.
//
// Expected shape: caching wins ~5x at light load; as the rate ramps up, the
// hot-spot servers congest and the benefit of caching collapses. CV > 1
// throughout (severe hot spots).
#include <iostream>

#include "bench_common.h"
#include "core/selective_replication.h"
#include "core/simple_partition.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 2 + Table 1",
                          "Mean read latency and CV with and without caching as the "
                          "aggregate request rate increases (50 x 40 MB files, Zipf 1.1).");

  const Bandwidth mem_link = gbps(0.8);  // m4.large NIC
  // Spilled-to-disk tier: HDFS-style 3-way replicated files on spinning
  // disks, ~30 MB/s effective sequential throughput per reader.
  const Bandwidth disk_link = mbps(240);

  Table t({"request_rate", "cached_mean_s", "cached_cv", "disk_mean_s", "disk_cv",
           "caching_speedup"});
  for (double rate : {5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
    const auto cat = make_uniform_catalog(50, 40 * kMB, 1.1, rate);

    StockScheme cached;
    auto mem_cfg = default_sim_config(17, mem_link);
    const auto mem = run_experiment(cached, cat, 6000, mem_cfg, 101);

    SelectiveReplicationScheme disk({1.0, 3});  // replicate everything 3x on disk
    auto disk_cfg = default_sim_config(17, disk_link);
    const auto dsk = run_experiment(disk, cat, 3000, disk_cfg, 101);

    t.add_row({rate, mem.mean, mem.cv, dsk.mean, dsk.cv,
               mem.mean > 0 ? dsk.mean / mem.mean : 0.0});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: ~5x speedup at rate 5, shrinking toward ~1x by rate 9-10;\n"
               "CV stays above 1 for both configurations (hot spots dominate).\n";
  return 0;
}
