// Timeline: hot-spot congestion building up in real time (the dynamic view
// of Section 2.2's motivation).
//
// A two-phase workload — calm (rate 6) for the first half, surge (rate 20)
// for the second — is replayed against the stock layout and SP-Cache. The
// per-window mean latency series shows the stock layout's hot spots
// snowballing once the surge begins (queues never drain), while SP-Cache
// absorbs the same surge with a modest, stable increase.
#include <iostream>

#include "bench_common.h"
#include "core/simple_partition.h"
#include "core/sp_cache.h"
#include "workload/arrivals.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

std::vector<Arrival> two_phase_arrivals(const Catalog& base, double calm_rate,
                                        double surge_rate, std::size_t per_phase,
                                        std::uint64_t seed) {
  auto calm = base;
  calm.set_total_rate(calm_rate);
  Rng rng(seed);
  auto arrivals = generate_poisson_arrivals(calm, per_phase, rng);
  const Seconds switch_time = arrivals.back().time;
  auto surge = base;
  surge.set_total_rate(surge_rate);
  auto tail = generate_poisson_arrivals(surge, per_phase, rng);
  for (auto& a : tail) a.time += switch_time;
  arrivals.insert(arrivals.end(), tail.begin(), tail.end());
  return arrivals;
}

std::vector<double> timeline(CachingScheme& scheme, const Catalog& cat,
                             const std::vector<Arrival>& arrivals, Seconds window) {
  Rng rng(8101);
  scheme.place(cat, std::vector<Bandwidth>(kServers, gbps(1.0)), rng);
  auto cfg = default_sim_config(8102);
  cfg.metrics_window = window;
  Simulation sim(cfg);
  const auto result =
      sim.run(arrivals, [&scheme](FileId f, Rng& r) { return scheme.plan_read(f, r); });
  return result.window_mean_latency;
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Timeline: congestion onset",
                          "Per-window mean latency while the request rate jumps 6 -> 20 "
                          "req/s halfway through (50 x 40 MB files, Zipf 1.1).");

  const auto cat = make_uniform_catalog(50, 40 * kMB, 1.1, 6.0);
  const auto arrivals = two_phase_arrivals(cat, 6.0, 20.0, 3000, 8100);
  const Seconds window = 50.0;

  StockScheme stock;
  const auto stock_series = timeline(stock, cat, arrivals, window);
  SpCacheScheme sp;
  const auto sp_series = timeline(sp, cat, arrivals, window);

  Table t({"window_start_s", "stock_mean_s", "sp_mean_s"});
  const std::size_t n = std::min(stock_series.size(), sp_series.size());
  const std::size_t stride = std::max<std::size_t>(1, n / 14);
  for (std::size_t w = 0; w < n; w += stride) {
    t.add_row({static_cast<double>(w) * window, stock_series[w], sp_series[w]});
  }
  t.print(std::cout);
  std::cout << "\nExpected: both schemes idle along during the calm phase; once the\n"
               "surge starts, the stock layout's hot-spot queues grow without bound\n"
               "while SP-Cache's series steps up modestly and stays flat.\n";
  return 0;
}
