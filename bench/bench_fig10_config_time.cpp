// Fig. 10: computational overhead of configuring the scale factor
// (Section 7.2).
//
// The paper measures the master-side runtime of Algorithm 1 (which solves
// the convex bound (9) for every file at every search step) for 1k-10k
// files: the cost grows linearly and stays under ~90 s at 10k files with
// CVXPY. Our golden-section solver is much faster in absolute terms; the
// *linear scaling* is the reproduced shape.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "math/scale_factor.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 10",
                          "Runtime of Algorithm 1 (scale-factor configuration) vs number "
                          "of files; mean over 3 trials with min/max spread.");

  const std::vector<Bandwidth> bw(kServers, gbps(1.0));

  Table t({"files", "mean_s", "min_s", "max_s", "iterations"});
  for (std::size_t n : {1000u, 2000u, 4000u, 6000u, 8000u, 10000u}) {
    const auto cat = make_uniform_catalog(n, 100 * kMB, 1.05, 8.0);
    Sample times;
    std::size_t iters = 0;
    for (int trial = 0; trial < 3; ++trial) {
      Rng rng(1000 + static_cast<std::uint64_t>(trial));
      const auto start = std::chrono::steady_clock::now();
      const auto res = find_scale_factor(cat, bw, ScaleFactorConfig{}, rng);
      times.add(std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
      iters = res.iterations;
    }
    t.add_row({static_cast<long long>(n), times.mean(), times.min(), times.max(),
               static_cast<long long>(iters)});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: configuration time grows linearly with the file count and\n"
               "remains far below the 12-hour re-balancing period (<= ~90 s at 10k files\n"
               "in the paper's CVXPY implementation).\n";
  return 0;
}
