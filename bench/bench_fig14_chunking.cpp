// Fig. 14: SP-Cache vs fixed-size chunking (Sections 4.3 and 7.3).
//
// Setup per the paper: the Fig. 13 cluster, with files split into constant
// 4 / 8 / 16 MB chunks regardless of popularity.
//
// Expected shape: small chunks (4-8 MB) pay heavy per-connection overhead
// and lose at low request rates (up to ~46% slower than SP-Cache at 4 MB);
// large chunks (16 MB) avoid that overhead but cannot break up hot spots,
// losing badly at high rates (>2x SP-Cache's mean at rate 22). In the tail,
// small chunks are competitive since they do remove hot spots.
#include <iostream>

#include "bench_common.h"
#include "core/fixed_chunking.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 14",
                          "Mean and 95th-percentile latency: SP-Cache vs fixed-size "
                          "chunking with 4/8/16 MB chunks.");

  Table t({"rate", "sp_mean", "c4MB_mean", "c8MB_mean", "c16MB_mean", "sp_p95", "c4MB_p95",
           "c8MB_p95", "c16MB_p95"});
  for (double rate : {6.0, 10.0, 14.0, 18.0, 22.0}) {
    const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, rate);
    SpCacheScheme sp;
    FixedChunkingScheme c4({4 * kMB}), c8({8 * kMB}), c16({16 * kMB});
    const auto r_sp = run_experiment(sp, cat, 9000, default_sim_config(71), 701);
    const auto r4 = run_experiment(c4, cat, 9000, default_sim_config(71), 701);
    const auto r8 = run_experiment(c8, cat, 9000, default_sim_config(71), 701);
    const auto r16 = run_experiment(c16, cat, 9000, default_sim_config(71), 701);
    t.add_row({rate, r_sp.mean, r4.mean, r8.mean, r16.mean, r_sp.p95, r4.p95, r8.p95, r16.p95});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: 4 MB chunks lose at low rates (connection overhead, up to\n"
               "~46% slower than SP), 16 MB chunks lose at high rates (hot spots, >2x\n"
               "SP's mean at rate 22); chunking's tail is competitive at small sizes.\n";
  return 0;
}
