// bench_tcp_scale — multi-client read throughput against real daemons,
// measuring the syscall budget of the TCP write path.
//
// Boots a real spcache_masterd + N spcache_serverd processes on ephemeral
// loopback ports, writes a deterministic dataset, then fans out
// E client endpoints x T threads of verified reads and reports ops/s,
// p50/p99 latency, and the servers' scatter-gather telemetry
// (transport.writev_calls / frames_per_writev, parsed off their exit
// lines). Two arms run back to back over identical workloads:
//
//   legacy  — daemons + clients with --legacy-write-path semantics: one
//             payload copy per send, one frame per writev (the pre-
//             batching write path, kept as TcpTransportConfig
//             batch_writes=false)
//   batched — the default path: staged sends (one loop wake per burst),
//             zero-copy frame queue, many frames per writev
//
// Each arm runs the timed fan-out --reps times against the same booted
// cluster and the best rep scores — the whole cluster shares this
// machine's cores with the clients, so single short windows are noisy.
//
// Writes BENCH_tcp_scale.json (one row per arm plus the speedup) and
// exits nonzero if any read mismatched, any side saw a framing error, or
// the batched arm failed to batch (frames_per_writev <= 1).
//
//   bench_tcp_scale [--smoke] [--servers N] [--endpoints E] [--threads T]
//                   [--files F] [--file-kb KB] [--reads R] [--reps P]
//                   [--seed S] [--bindir DIR]
//
//   --smoke      small fixed workload for CI (a few seconds end to end)
//   --bindir DIR directory holding spcache_masterd/spcache_serverd
//                [<bench dir>/../tools]
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fault/fault_injector.h"
#include "rpc/cache_service.h"
#include "rpc/tcp_transport.h"

using namespace spcache;
using namespace spcache::rpc;

namespace {

struct Options {
  // Defaults exercise the shape the syscall-lean path is built for: one
  // client endpoint shared by many threads, so reply bursts pile onto few
  // connections and the gather path amortizes wakes and writev calls.
  std::size_t servers = 3;
  std::size_t endpoints = 1;
  std::size_t threads = 32;  // per endpoint
  std::size_t files = 128;
  std::size_t file_kb = 6;
  std::size_t reads = 20000;  // per rep, per arm
  std::size_t reps = 3;       // timed repetitions per arm; best rep scores
  std::uint64_t seed = 42;
  std::string bindir;
  bool smoke = false;
};

// One spawned daemon: pid + the file capturing its stdout/stderr.
struct Daemon {
  pid_t pid = -1;
  std::string log_path;
};

Daemon spawn(const std::vector<std::string>& argv_strings, const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const auto& s : argv_strings) argv.push_back(const_cast<char*>(s.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("bench_tcp_scale: fork failed");
  if (pid == 0) {
    const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::execv(argv[0], argv.data());
    std::perror("bench_tcp_scale: execv");
    std::_Exit(127);
  }
  return Daemon{pid, log_path};
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Poll the daemon's log for its "listening on HOST:PORT" banner and return
// the kernel-assigned port.
std::uint16_t wait_for_port(const Daemon& d, std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string log = slurp(d.log_path);
    const auto pos = log.find("listening on ");
    if (pos != std::string::npos) {
      const auto eol = log.find('\n', pos);
      const std::string line = log.substr(pos, eol == std::string::npos ? eol : eol - pos);
      const auto colon = line.rfind(':');
      if (colon != std::string::npos) {
        const int port = std::atoi(line.c_str() + colon + 1);
        if (port > 0 && port <= 65535) return static_cast<std::uint16_t>(port);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  throw std::runtime_error("bench_tcp_scale: daemon never reported its port (" + d.log_path +
                           "):\n" + slurp(d.log_path));
}

// SIGTERM the daemon, reap it (escalating to SIGKILL after `grace`), and
// return its full log — exit-line counters included.
std::string stop_daemon(Daemon& d, std::chrono::seconds grace = std::chrono::seconds(5)) {
  if (d.pid > 0) {
    ::kill(d.pid, SIGTERM);
    const auto deadline = std::chrono::steady_clock::now() + grace;
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(d.pid, &status, WNOHANG);
      if (r == d.pid || r < 0) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(d.pid, SIGKILL);
        ::waitpid(d.pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    d.pid = -1;
  }
  return slurp(d.log_path);
}

// "key=value" scrape off a daemon exit line; 0.0 when absent.
double scrape(const std::string& text, const std::string& key) {
  const auto pos = text.rfind(key + "=");
  if (pos == std::string::npos) return 0.0;
  return std::atof(text.c_str() + pos + key.size() + 1);
}

// Deterministic per-file content (xorshift over a splitmix-style seed), so
// every endpoint regenerates the expected bytes without sharing state.
std::vector<std::uint8_t> file_content(std::uint64_t seed, FileId f, std::size_t size) {
  std::vector<std::uint8_t> data(size);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + f + 1;
  for (auto& b : data) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return data;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct ArmResult {
  double wall_s = 0.0;
  double ops_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t reads = 0;        // best rep
  std::uint64_t timed_reads = 0;  // all reps (syscall denominators)
  std::uint64_t mismatches = 0;
  std::uint64_t read_failures = 0;
  std::uint64_t client_framing_errors = 0;
  std::uint64_t server_framing_errors = 0;
  double server_writev_calls = 0.0;
  double server_frames_sent = 0.0;
  double server_frames_per_writev = 0.0;
  double syscalls_per_read = 0.0;
  double sock_partial_writes = 0.0;  // chaos pass: total fired, both sides
};

// One endpoint: its own TCP transport (one connection to the master and to
// each worker) shared by `threads` reader threads — exactly the shape that
// queues several replies on one server connection at once.
struct Endpoint {
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<Bus> bus;
  std::unique_ptr<RpcSpClient> client;
};

// One arm = its own booted cluster + client endpoints. Both arms stay
// resident at once and their timed reps interleave (legacy rep 0, batched
// rep 0, legacy rep 1, ...) so a noisy-neighbor burst on a shared machine
// lands on both arms instead of skewing whichever arm ran during it.
struct Arm {
  Options o;
  bool legacy = false;
  std::string tag;
  // Chaos verification pass: servers AND clients run with seeded
  // partial-write chaos armed, so every writev sees clamped flushes and the
  // iovec resume path — reads must still come back bit-exact.
  double chaos_partial = 0.0;
  std::unique_ptr<fault::FaultInjector> client_injector;

  std::vector<Daemon> workers;
  Daemon master;
  std::vector<Endpoint> endpoints;
  std::vector<std::vector<std::uint8_t>> expected;
  ArmResult result;
  std::vector<double> rep_ops;  // ops/s of each rep, in rep order
  std::uint64_t mismatches = 0;
  std::uint64_t failures = 0;

  Arm(const Options& opts, bool is_legacy, std::string arm_tag)
      : o(opts), legacy(is_legacy), tag(std::move(arm_tag)) {}

  // Spawn the daemons, connect the endpoints, write the dataset, and warm
  // every endpoint's layout cache + connections — all outside the clock.
  void boot() {
    const std::string prefix =
        "/tmp/bench_tcp_scale_" + tag + "_" + std::to_string(::getpid()) + "_";
    {
      std::vector<std::string> argv = {o.bindir + "/spcache_masterd", "--port", "0",
                                       "--max-seconds", "300"};
      if (legacy) argv.push_back("--legacy-write-path");
      master = spawn(argv, prefix + "master.log");
    }
    for (std::size_t n = 0; n < o.servers; ++n) {
      std::vector<std::string> argv = {o.bindir + "/spcache_serverd",
                                       "--node",        std::to_string(kFirstWorkerNode + n),
                                       "--port",        "0",
                                       "--max-seconds", "300"};
      if (legacy) argv.push_back("--legacy-write-path");
      if (chaos_partial > 0.0) {
        argv.insert(argv.end(), {"--chaos-seed", std::to_string(o.seed + n), "--chaos-partial",
                                 std::to_string(chaos_partial)});
      }
      workers.push_back(spawn(argv, prefix + "server" + std::to_string(n) + ".log"));
    }
    const std::uint16_t master_port = wait_for_port(master, std::chrono::seconds(10));
    std::vector<std::uint16_t> worker_ports;
    for (const auto& w : workers) {
      worker_ports.push_back(wait_for_port(w, std::chrono::seconds(10)));
    }

    TcpTransportConfig client_config;
    client_config.batch_writes = !legacy;
    std::vector<std::uint32_t> all_servers(o.servers);
    for (std::size_t s = 0; s < o.servers; ++s) all_servers[s] = static_cast<std::uint32_t>(s);
    ClientCacheConfig cache;
    cache.single_flight = false;  // every read must hit the wire
    endpoints.resize(o.endpoints);
    for (std::size_t e = 0; e < o.endpoints; ++e) {
      auto& ep = endpoints[e];
      ep.transport = std::make_unique<TcpTransport>(client_config);
      if (chaos_partial > 0.0) {
        if (!client_injector) {
          fault::FaultConfig fc;
          fc.sock_partial_write_p = chaos_partial;
          client_injector = std::make_unique<fault::FaultInjector>(o.seed + 100, fc);
        }
        ep.transport->set_fault_injector(client_injector.get());
      }
      ep.transport->add_peer(kMasterNode, "127.0.0.1", master_port);
      std::vector<NodeId> worker_of_server;
      for (std::size_t s = 0; s < o.servers; ++s) {
        const NodeId node = kFirstWorkerNode + static_cast<NodeId>(s);
        ep.transport->add_peer(node, "127.0.0.1", worker_ports[s]);
        worker_of_server.push_back(node);
      }
      ep.transport->start();
      ep.bus = std::make_unique<Bus>(*ep.transport);
      ep.client = std::make_unique<RpcSpClient>(
          *ep.bus, kFirstClientNode + static_cast<NodeId>(e), kMasterNode,
          std::move(worker_of_server), fault::RetryPolicy{}, std::chrono::milliseconds(2000),
          cache);
    }

    // Dataset: every file striped over every server.
    const std::size_t file_size = o.file_kb * 1024;
    expected.resize(o.files);
    for (std::size_t f = 0; f < o.files; ++f) {
      expected[f] = file_content(o.seed, static_cast<FileId>(f), file_size);
      endpoints[0].client->write(static_cast<FileId>(f), expected[f], all_servers);
    }
    std::vector<FileId> ids(o.files);
    for (std::size_t f = 0; f < o.files; ++f) ids[f] = static_cast<FileId>(f);
    for (auto& ep : endpoints) {
      ep.client->prefetch_layouts(ids);
      (void)ep.client->read(0);
    }
  }

  // One timed fan-out window. The best window scores; correctness counters
  // (mismatches, failures, framing) accumulate over every rep, and the
  // server syscall counters cover them all.
  void run_rep(std::size_t rep) {
    const std::size_t total_threads = o.endpoints * o.threads;
    const std::size_t reads_per_thread = std::max<std::size_t>(1, o.reads / total_threads);
    std::atomic<std::uint64_t> rep_mismatches{0};
    std::atomic<std::uint64_t> rep_failures{0};
    std::vector<std::thread> pool;
    std::vector<std::vector<double>> latencies(total_threads);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < total_threads; ++t) {
      pool.emplace_back([&, t, rep] {
        auto& client = *endpoints[t / o.threads].client;
        auto& lat = latencies[t];
        lat.reserve(reads_per_thread);
        std::uint64_t x = o.seed ^ (0xD1B54A32D192ED03ull * (t + 1) + rep);
        for (std::size_t r = 0; r < reads_per_thread; ++r) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          const auto fid = static_cast<FileId>(x % o.files);
          const auto t0 = std::chrono::steady_clock::now();
          try {
            const auto bytes = client.read(fid);
            lat.push_back(
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
            if (bytes != expected[fid]) rep_mismatches.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            rep_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : pool) th.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    std::vector<double> all;
    for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
    std::sort(all.begin(), all.end());
    result.timed_reads += all.size();
    mismatches += rep_mismatches.load();
    failures += rep_failures.load();
    const double ops = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0;
    rep_ops.push_back(ops);
    if (ops > result.ops_per_s) {
      result.wall_s = wall_s;
      result.ops_per_s = ops;
      result.reads = all.size();
      result.p50_ms = percentile(all, 0.50) * 1e3;
      result.p99_ms = percentile(all, 0.99) * 1e3;
    }
  }

  // Tear everything down and scrape the servers' exit-line telemetry.
  ArmResult finish() {
    result.mismatches = mismatches;
    result.read_failures = failures;
    for (auto& ep : endpoints) {
      if (!ep.transport) continue;
      result.client_framing_errors += ep.transport->counters().framing_errors;
      ep.client.reset();  // flushes access reports while the wire is up
      ep.bus.reset();
      ep.transport.reset();
    }
    if (client_injector) {
      result.sock_partial_writes +=
          static_cast<double>(client_injector->stats().sock_partial_writes);
    }
    for (auto& w : workers) {
      const std::string log = stop_daemon(w);
      result.server_framing_errors +=
          static_cast<std::uint64_t>(scrape(log, "transport.framing_errors"));
      result.server_writev_calls += scrape(log, "transport.writev_calls");
      result.server_frames_sent += scrape(log, "transport.frames_sent");
      if (chaos_partial > 0.0) {
        result.sock_partial_writes += scrape(log, "chaos.sock_partial_writes");
      }
    }
    {
      const std::string log = stop_daemon(master);
      result.server_framing_errors +=
          static_cast<std::uint64_t>(scrape(log, "transport.framing_errors"));
    }
    if (result.server_writev_calls > 0) {
      result.server_frames_per_writev = result.server_frames_sent / result.server_writev_calls;
    }
    if (result.timed_reads > 0) {
      result.syscalls_per_read =
          result.server_writev_calls / static_cast<double>(result.timed_reads);
    }
    return result;
  }

  // Best-effort emergency teardown (error paths).
  void kill_daemons() {
    for (auto& ep : endpoints) {
      ep.client.reset();
      ep.bus.reset();
      ep.transport.reset();
    }
    for (auto& w : workers) stop_daemon(w, std::chrono::seconds(2));
    stop_daemon(master, std::chrono::seconds(2));
  }
};

bench::JsonRow arm_row(const std::string& arm, const Options& o, const ArmResult& r) {
  bench::JsonRow row;
  row.push_back(bench::text_field("arm", arm));
  row.emplace_back("servers", static_cast<double>(o.servers));
  row.emplace_back("endpoints", static_cast<double>(o.endpoints));
  row.emplace_back("threads_per_endpoint", static_cast<double>(o.threads));
  row.emplace_back("files", static_cast<double>(o.files));
  row.emplace_back("file_kb", static_cast<double>(o.file_kb));
  row.emplace_back("reads", static_cast<double>(r.reads));
  row.emplace_back("wall_s", r.wall_s);
  row.emplace_back("ops_per_s", r.ops_per_s);
  row.emplace_back("p50_ms", r.p50_ms);
  row.emplace_back("p99_ms", r.p99_ms);
  row.emplace_back("mismatches", static_cast<double>(r.mismatches));
  row.emplace_back("read_failures", static_cast<double>(r.read_failures));
  row.emplace_back("client_framing_errors", static_cast<double>(r.client_framing_errors));
  row.emplace_back("server_framing_errors", static_cast<double>(r.server_framing_errors));
  row.emplace_back("server_writev_calls", r.server_writev_calls);
  row.emplace_back("server_frames_sent", r.server_frames_sent);
  row.emplace_back("server_frames_per_writev", r.server_frames_per_writev);
  row.emplace_back("syscalls_per_read", r.syscalls_per_read);
  return row;
}

void print_arm(const std::string& arm, const ArmResult& r) {
  std::cout << "arm=" << arm << " reads=" << r.reads << " ops_per_s=" << r.ops_per_s
            << " p50_ms=" << r.p50_ms << " p99_ms=" << r.p99_ms
            << " mismatches=" << r.mismatches << " read_failures=" << r.read_failures
            << " framing_errors=" << (r.client_framing_errors + r.server_framing_errors)
            << " server_writev_calls=" << r.server_writev_calls
            << " server_frames_per_writev=" << r.server_frames_per_writev
            << " syscalls_per_read=" << r.syscalls_per_read << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&] {
      if (i + 1 >= argc) {
        std::cerr << "bench_tcp_scale: missing value for " << flag << "\n";
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--smoke") {
      o.smoke = true;
    } else if (flag == "--servers") {
      o.servers = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--endpoints") {
      o.endpoints = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--threads") {
      o.threads = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--files") {
      o.files = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--file-kb") {
      o.file_kb = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--reads") {
      o.reads = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--reps") {
      o.reps = std::max<std::size_t>(1, std::strtoul(value().c_str(), nullptr, 10));
    } else if (flag == "--seed") {
      o.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--bindir") {
      o.bindir = value();
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "bench_tcp_scale [--smoke] [--servers N] [--endpoints E] [--threads T] "
                   "[--files F] [--file-kb KB] [--reads R] [--reps P] [--seed S] "
                   "[--bindir DIR]\n";
      return 0;
    } else {
      std::cerr << "bench_tcp_scale: unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (o.smoke) {
    o.servers = 3;
    o.endpoints = 1;
    o.threads = 32;
    o.files = 64;
    o.file_kb = 6;
    o.reads = 15000;
    o.reps = 5;
  }
  if (o.bindir.empty()) {
    // Default: the daemons live next door (build/bench -> build/tools).
    const std::string self = argv[0];
    const auto slash = self.rfind('/');
    o.bindir = (slash == std::string::npos ? std::string(".") : self.substr(0, slash)) +
               "/../tools";
  }
  // Ignore SIGPIPE process-wide: client transports write to daemons this
  // process kills, and a stray EPIPE must surface as an errno, not a death.
  ::signal(SIGPIPE, SIG_IGN);

  std::cout << "bench_tcp_scale: servers=" << o.servers << " endpoints=" << o.endpoints
            << " threads/endpoint=" << o.threads << " files=" << o.files
            << " file_kb=" << o.file_kb << " reads=" << o.reads << " reps=" << o.reps
            << " seed=" << o.seed << (o.smoke ? " (smoke)" : "") << std::endl;

  // Both clusters stay resident (an idle cluster blocks in epoll and costs
  // nothing) and the timed reps interleave, so machine-level noise lands on
  // both arms instead of biasing whichever arm it overlapped.
  Arm legacy_arm(o, /*legacy=*/true, "legacy");
  Arm batched_arm(o, /*legacy=*/false, "batched");
  // Untimed chaos pass: a small batched-path cluster where both sides run
  // seeded partial-write chaos, so clamped flushes exercise the iovec
  // resume path on live daemons — every read must still be bit-exact.
  Options chaos_o = o;
  chaos_o.threads = 8;
  chaos_o.reads = 600;
  chaos_o.files = std::min<std::size_t>(o.files, 32);
  Arm chaos_arm(chaos_o, /*legacy=*/false, "chaos");
  chaos_arm.chaos_partial = 0.05;
  ArmResult legacy;
  ArmResult batched;
  ArmResult chaos;
  try {
    legacy_arm.boot();
    batched_arm.boot();
    for (std::size_t rep = 0; rep < o.reps; ++rep) {
      legacy_arm.run_rep(rep);
      batched_arm.run_rep(rep);
    }
    legacy = legacy_arm.finish();
    print_arm("legacy", legacy);
    batched = batched_arm.finish();
    print_arm("batched", batched);
    chaos_arm.boot();
    chaos_arm.run_rep(0);
    chaos = chaos_arm.finish();
    std::cout << "arm=chaos reads=" << chaos.timed_reads << " mismatches=" << chaos.mismatches
              << " read_failures=" << chaos.read_failures << " framing_errors="
              << (chaos.client_framing_errors + chaos.server_framing_errors)
              << " sock_partial_writes=" << chaos.sock_partial_writes << std::endl;
  } catch (const std::exception& e) {
    legacy_arm.kill_daemons();
    batched_arm.kill_daemons();
    chaos_arm.kill_daemons();
    std::cerr << "bench_tcp_scale: FAIL " << e.what() << "\n";
    return 1;
  }

  // Paired estimator: reps ran interleaved, so each legacy/batched pair saw
  // (almost) the same machine conditions — the median of per-pair ratios is
  // far less noise-sensitive than a ratio of arm-level aggregates.
  std::vector<double> ratios;
  for (std::size_t rep = 0; rep < o.reps; ++rep) {
    if (rep < legacy_arm.rep_ops.size() && rep < batched_arm.rep_ops.size() &&
        legacy_arm.rep_ops[rep] > 0) {
      ratios.push_back(batched_arm.rep_ops[rep] / legacy_arm.rep_ops[rep]);
    }
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
  std::cout << "speedup_batched_over_legacy=" << speedup << " (median of " << ratios.size()
            << " paired reps)" << std::endl;

  auto legacy_row = arm_row("legacy", o, legacy);
  auto batched_row = arm_row("batched", o, batched);
  batched_row.emplace_back("speedup_vs_legacy", speedup);
  auto chaos_row = arm_row("chaos", chaos_o, chaos);
  chaos_row.emplace_back("sock_partial_writes", chaos.sock_partial_writes);
  bench::write_json_report("tcp_scale", {legacy_row, batched_row, chaos_row});

  // Gates: correctness is absolute (including under chaos); the batched arm
  // must actually batch, and the chaos pass must actually have fired faults.
  bool ok = true;
  const std::uint64_t mismatches = legacy.mismatches + batched.mismatches + chaos.mismatches;
  const std::uint64_t framing = legacy.client_framing_errors + legacy.server_framing_errors +
                                batched.client_framing_errors + batched.server_framing_errors +
                                chaos.client_framing_errors + chaos.server_framing_errors;
  if (chaos.read_failures != 0 || chaos.sock_partial_writes <= 0.0) {
    std::cerr << "bench_tcp_scale: FAIL chaos read_failures=" << chaos.read_failures
              << " sock_partial_writes=" << chaos.sock_partial_writes
              << " (want 0 failures and > 0 fired faults)\n";
    ok = false;
  }
  if (mismatches != 0) {
    std::cerr << "bench_tcp_scale: FAIL mismatches=" << mismatches << "\n";
    ok = false;
  }
  if (framing != 0) {
    std::cerr << "bench_tcp_scale: FAIL framing_errors=" << framing << "\n";
    ok = false;
  }
  if (batched.server_frames_per_writev <= 1.0) {
    std::cerr << "bench_tcp_scale: FAIL server_frames_per_writev="
              << batched.server_frames_per_writev << " (expected > 1)\n";
    ok = false;
  }
  std::cout << "gates mismatches=" << mismatches << " framing_errors=" << framing
            << " batched_frames_per_writev=" << batched.server_frames_per_writev
            << " result=" << (ok ? "PASS" : "FAIL") << std::endl;
  return ok ? 0 : 1;
}
