// Fig. 20: cache hit ratio with throttled cache budget (Section 7.6).
//
// The Fig. 13 benefits were achieved with 40% LESS memory; this experiment
// throttles the aggregate cache budget and replays the access stream
// through an LRU per scheme, charging each scheme its cached footprint:
// S_i for SP-Cache, 1.4 S_i for EC-Cache's (10,14) code, r_i S_i for
// selective replication.
//
// Expected shape: redundancy-free SP-Cache keeps the most files resident
// and wins at every budget; selective replication is worst (hot replicas
// evict many not-so-hot files).
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"
#include "sim/lru_cache.h"
#include "workload/arrivals.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 20",
                          "LRU hit ratio vs throttled cache budget (fraction of the raw "
                          "catalog bytes) for the three schemes' cached footprints.");

  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, 18.0);
  const std::vector<Bandwidth> bw(kServers, gbps(1.0));
  Rng rng(2020);

  SpCacheScheme sp;
  EcCacheScheme ec;
  SelectiveReplicationScheme sr;
  sp.place(cat, bw, rng);
  ec.place(cat, bw, rng);
  sr.place(cat, bw, rng);

  Rng arrival_rng(2021);
  const auto arrivals = generate_poisson_arrivals(cat, 60000, arrival_rng);
  const Bytes raw = cat.total_bytes();

  Table t({"budget_fraction", "sp_hit_ratio", "ec_hit_ratio", "repl_hit_ratio"});
  for (double budget_frac : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
    const auto budget = static_cast<Bytes>(budget_frac * static_cast<double>(raw));
    LruCache sp_lru(budget), ec_lru(budget), sr_lru(budget);
    for (const auto& a : arrivals) {
      sp_lru.access(a.file, sp.footprint(a.file));
      ec_lru.access(a.file, ec.footprint(a.file));
      sr_lru.access(a.file, sr.footprint(a.file));
    }
    t.add_row({budget_frac, sp_lru.hit_ratio(), ec_lru.hit_ratio(), sr_lru.hit_ratio()});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: SP-Cache attains the highest hit ratio at every throttled\n"
               "budget; selective replication the lowest (each extra hot replica evicts\n"
               "an equally-sized 'not-so-hot' file).\n";
  return 0;
}
