// Fig. 5 + Table 3: simple (uniform) partition with and without stragglers
// (Section 4).
//
// Setup per the paper: the Section 2.2 cluster (50 x 40 MB files, Zipf 1.1,
// 30 servers) at aggregate rate 10 — a load where the stock layout's mean
// latency stretches past 20 s. Every file is split into the same k
// partitions, k in {1, 3, 9, 15, 21, 27}. Stragglers: each partition read
// is slowed with probability 0.05 by a Bing-profile factor.
//
// Expected shape: latency collapses by >10x once k reaches ~9, is U-shaped
// in k (network overhead grows past k~15), and the straggler curve rises
// with k (more branches -> higher chance the join waits on a straggler);
// CV degrades with k under stragglers (paper Table 3).
#include <iostream>

#include "bench_common.h"
#include "core/simple_partition.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 5 + Table 3",
                          "Average read latency and CV of simple partition vs partition "
                          "count, with and without injected stragglers (rate 10).");

  const auto cat = make_uniform_catalog(50, 40 * kMB, 1.1, 10.0);
  const Bandwidth link = gbps(0.8);

  Table t({"k", "mean_s", "cv", "mean_straggled_s", "cv_straggled"});
  for (std::size_t k : {1u, 3u, 9u, 15u, 21u, 27u}) {
    SimplePartitionScheme clean_scheme(k);
    auto cfg = default_sim_config(31, link);
    const auto clean = run_experiment(clean_scheme, cat, 8000, cfg, 307);

    SimplePartitionScheme straggled_scheme(k);
    auto scfg = default_sim_config(31, link);
    scfg.stragglers = StragglerModel::bing(0.05);
    const auto straggled = run_experiment(straggled_scheme, cat, 8000, scfg, 307);

    t.add_row({static_cast<long long>(k), clean.mean, clean.cv, straggled.mean, straggled.cv});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: stock (k=1) is an order of magnitude slower; the clean\n"
               "curve bottoms out around k~9-15 and creeps back up from network\n"
               "overhead; stragglers penalize large k (the dashed line of Fig. 5) and\n"
               "push the CV up with k (Table 3).\n";
  return 0;
}
