// Fig. 3 + Table 2: selective replication trades linear memory for
// sublinear latency (Section 3.1).
//
// Setup per the paper: top 10% popular files copied to 1..5 replicas,
// aggregate rate 6 req/s, 50 x 40 MB files, Zipf 1.1 (the Section 2.2
// cluster). Expected shape: memory cost grows linearly with the replica
// count while the mean latency improves sublinearly; CV only drops below 1
// at around 4 replicas.
#include <iostream>

#include "bench_common.h"
#include "core/selective_replication.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 3 + Table 2",
                          "Mean latency, cache cost, and CV vs replica count for the top "
                          "10% popular files (rate 6).");

  const auto cat = make_uniform_catalog(50, 40 * kMB, 1.1, 6.0);
  const Bandwidth link = gbps(0.8);

  Table t({"replicas", "mean_latency_s", "p95_latency_s", "cv", "cache_cost_pct"});
  for (std::size_t replicas : {1u, 2u, 3u, 4u, 5u}) {
    SelectiveReplicationScheme scheme({0.10, replicas});
    auto cfg = default_sim_config(23, link);
    const auto r = run_experiment(scheme, cat, 8000, cfg, 211);
    const double cost_pct = scheme.memory_overhead(cat) * 100.0;
    t.add_row({static_cast<long long>(replicas), r.mean, r.p95, r.cv, cost_pct});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: linear memory growth buys sublinear latency improvement;\n"
               "CV falls below ~1 only once the hot files have ~4 replicas\n"
               "(paper Table 2: CV 1.29 -> 0.61 from 1 to 4 replicas).\n";
  return 0;
}
