// Fig. 21: trace-driven simulation with real-world size distribution and
// bursty arrivals (Section 7.7).
//
// Setup per the paper: 3k files with Yahoo!-like sizes (hot files larger),
// Zipf 1.1 popularity, a non-Poisson (bursty) arrival sequence standing in
// for the Google-trace job submissions, 30 servers x 10 GB, injected
// stragglers, and a 3x latency penalty on cache misses under an LRU with
// the scheme's footprint.
//
// Expected shape: SP-Cache leads the latency distribution (paper means:
// SP 3.8 s, EC 6.0 s, replication 44.1 s — replication collapses because
// replicating big hot files destroys its hit ratio).
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"
#include "sim/lru_cache.h"
#include "workload/arrivals.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

struct TraceResult {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double hit_ratio = 0.0;
  Sample latencies;
};

TraceResult run_trace(CachingScheme& scheme, const Catalog& cat,
                      const std::vector<Arrival>& arrivals, Bytes budget) {
  Rng rng(2101);
  scheme.place(cat, std::vector<Bandwidth>(kServers, gbps(1.0)), rng);

  // Cache admission decided stream-order: misses cost 3x (Section 7.7).
  LruCache lru(budget);
  std::vector<double> scale(arrivals.size(), 1.0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (!lru.access(arrivals[i].file, scheme.footprint(arrivals[i].file))) scale[i] = 3.0;
  }

  auto cfg = default_sim_config(2102);
  cfg.stragglers = StragglerModel::bing(0.05);
  Simulation sim(cfg);
  const auto r = sim.run(
      arrivals, [&scheme](FileId f, Rng& rr) { return scheme.plan_read(f, rr); },
      [&scale](std::size_t i) { return scale[i]; });

  TraceResult out;
  out.mean = r.mean_latency();
  out.p50 = r.latencies.percentile(0.50);
  out.p95 = r.tail_latency();
  out.hit_ratio = lru.hit_ratio();
  out.latencies = std::move(r.latencies);
  return out;
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Fig. 21",
                          "Trace-driven simulation: Yahoo!-like sizes, Zipf 1.1, bursty "
                          "(MMPP) arrivals, stragglers, 3x miss penalty, 120 GB budget.");

  Rng rng(2100);
  YahooSizeModel size_model;
  size_model.cold_mean_size = 24 * kMB;  // scale sizes so the budget binds
  const auto cat = make_yahoo_catalog(3000, 1.1, 3.6, size_model, rng);

  MmppParams mmpp;
  mmpp.calm_rate = 2.5;
  mmpp.burst_rate = 12.0;
  mmpp.mean_calm_time = 30.0;
  mmpp.mean_burst_time = 4.0;
  Rng arrival_rng(2103);
  const auto arrivals = generate_mmpp_arrivals(cat, mmpp, 30000, arrival_rng);
  std::cout << "Arrival burstiness (index of dispersion, 10 s windows): "
            << index_of_dispersion(arrivals, 10.0) << " (Poisson = 1)\n\n";

  const Bytes budget = 120 * kGB;  // throttled: 30 servers x 4 GB

  Table t({"scheme", "mean_s", "median_s", "p95_s", "hit_ratio"});
  SpCacheScheme sp;
  const auto r_sp = run_trace(sp, cat, arrivals, budget);
  t.add_row({std::string("SP-Cache"), r_sp.mean, r_sp.p50, r_sp.p95, r_sp.hit_ratio});
  EcCacheScheme ec;
  const auto r_ec = run_trace(ec, cat, arrivals, budget);
  t.add_row({std::string("EC-Cache"), r_ec.mean, r_ec.p50, r_ec.p95, r_ec.hit_ratio});
  SelectiveReplicationScheme sr;
  const auto r_sr = run_trace(sr, cat, arrivals, budget);
  t.add_row({std::string("Selective replication"), r_sr.mean, r_sr.p50, r_sr.p95,
             r_sr.hit_ratio});
  t.print(std::cout);

  // The figure itself is a latency CDF; print the curves as quantile rows.
  std::cout << "\nLatency CDF (seconds at each quantile):\n";
  Table cdf({"quantile", "sp", "ec", "replication"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    cdf.add_row({q, r_sp.latencies.percentile(q), r_ec.latencies.percentile(q),
                 r_sr.latencies.percentile(q)});
  }
  cdf.print(std::cout);

  std::cout << "\nPaper anchors: SP-Cache leads (3.8 s mean) over EC-Cache (6.0 s);\n"
               "selective replication collapses (44.1 s) because replicating large hot\n"
               "files destroys its hit ratio under the shared budget. Poisson arrivals\n"
               "are not critical — the ordering holds under bursty traffic.\n";
  return 0;
}
