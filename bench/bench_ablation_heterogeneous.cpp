// Ablation: heterogeneous clusters and bandwidth-weighted placement.
//
// The paper's model already carries per-server bandwidths B_s (the master
// measures them before each re-balancing epoch), but its EC2 clusters are
// homogeneous so uniform random placement suffices. In a mixed cluster
// (half 1 Gbps, half 500 Mbps here), uniform placement overloads the slow
// NICs; drawing servers with probability proportional to bandwidth
// equalizes *utilization* instead of partition counts.
#include <iostream>

#include "bench_common.h"
#include "core/sp_cache.h"
#include "workload/arrivals.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

// Imbalance of bandwidth-normalized load (service seconds per server).
double utilization_imbalance(const std::vector<double>& bytes,
                             const std::vector<Bandwidth>& bw) {
  std::vector<double> busy(bytes.size());
  for (std::size_t s = 0; s < bytes.size(); ++s) busy[s] = bytes[s] / bw[s];
  return imbalance_factor(busy);
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Ablation: heterogeneous cluster",
                          "SP-Cache on a mixed cluster (15 x 1 Gbps + 15 x 500 Mbps): "
                          "uniform vs bandwidth-weighted random placement, rate 10.");

  std::vector<Bandwidth> bw(kServers);
  for (std::size_t s = 0; s < kServers; ++s) bw[s] = s < 15 ? gbps(1.0) : mbps(500);

  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, 10.0);

  Table t({"placement", "mean_s", "p95_s", "utilization_imbalance"});
  for (const bool weighted : {false, true}) {
    SpCacheConfig cfg;
    cfg.bandwidth_weighted_placement = weighted;
    SpCacheScheme sp(cfg);
    Rng rng(4100);
    sp.place(cat, bw, rng);

    SimConfig sim_cfg;
    sim_cfg.n_servers = kServers;
    sim_cfg.bandwidth = bw;
    sim_cfg.goodput = GoodputModel::calibrated(gbps(1.0));
    sim_cfg.seed = 4101;
    Simulation sim(sim_cfg);
    Rng arrival_rng(4102);
    const auto arrivals = generate_poisson_arrivals(cat, 9000, arrival_rng);
    const auto r =
        sim.run(arrivals, [&sp](FileId f, Rng& rr) { return sp.plan_read(f, rr); });

    t.add_row({std::string(weighted ? "Bandwidth-weighted" : "Uniform random"),
               r.mean_latency(), r.tail_latency(), utilization_imbalance(r.server_bytes, bw)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: weighting by bandwidth shifts partitions toward the fast\n"
               "NICs, lowering both the utilization imbalance and the latency tail on\n"
               "mixed hardware.\n";
  return 0;
}
