// Fig. 22: write latency vs file size for the four schemes (Section 7.8).
//
// Writes are sequential (the paper's fair-comparison discipline): the
// client pushes every stored piece back-to-back through its NIC, paying a
// per-store connection setup, plus the encode time for EC-Cache. The
// written file is treated as popular (the paper provides the popularity at
// write time), so selective replication stores 4 copies and SP-Cache splits
// per its placement.
//
// Expected shape: replication slowest (4x the bytes); EC-Cache pays 1.4x
// bytes + encode (gap grows with size); 4 MB chunking pays per-chunk setup
// (gap grows with size); SP-Cache fastest — ~1.77x faster than EC-Cache and
// ~3.71x than replication on average, ~13% vs 4 MB chunking.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/fixed_chunking.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 22",
                          "Sequential write latency vs file size (file written as a hot "
                          "file; per-store setup 8 ms; 1 Gbps client NIC).");

  const Bandwidth link = gbps(1.0);
  const Seconds setup = 0.008;
  const std::vector<Bandwidth> bw(kServers, link);

  Table t({"size_MB", "sp_write_s", "sp_parallel_write_s", "ec_write_s", "repl_write_s",
           "chunk4MB_write_s", "ec_over_sp", "repl_over_sp", "chunk_over_sp"});

  // The write path applies Eq. 1 with a fixed elbow alpha calibrated as in
  // the paper's Fig. 11 (hottest 100 MB file ~ 17 partitions), so the
  // partition count of the written file scales with its size*popularity:
  // small writes stay nearly unsplit, large hot writes split finely.
  const double p_hot = make_uniform_catalog(50, kMB, 1.05, 8.0).popularity(0);
  const double alpha = 17.0 / (p_hot * static_cast<double>(100 * kMB));

  double sum_ec = 0.0, sum_repl = 0.0, sum_chunk = 0.0;
  int rows = 0;
  for (Bytes mb : {10ull, 25ull, 50ull, 100ull, 150ull, 200ull}) {
    // A small catalog whose file 0 (the written file) is the hottest.
    auto cat = make_uniform_catalog(50, mb * kMB, 1.05, 8.0);
    Rng rng(2200 + mb);

    SpCacheConfig sp_cfg;
    sp_cfg.fixed_alpha = alpha;
    SpCacheScheme sp(sp_cfg);
    sp.place(cat, bw, rng);
    EcCacheScheme ec;
    ec.place(cat, bw, rng);
    SelectiveReplicationScheme sr;
    sr.place(cat, bw, rng);
    FixedChunkingScheme ch({4 * kMB});
    ch.place(cat, bw, rng);

    const double t_sp = sequential_write_latency(sp.plan_write(0, rng), link, setup);
    // Section 7.8: "the write performance can be further improved using the
    // parallel partition scheme" — pieces stream to their servers in
    // parallel, bounded by the client's multi-stream aggregate throughput.
    const auto sp_plan = sp.plan_write(0, rng);
    Bytes sp_total = 0;
    for (const auto& st : sp_plan.stores) sp_total += st.bytes;
    const GoodputModel goodput = GoodputModel::calibrated(link);
    const double streams = std::min<double>(4.0, static_cast<double>(sp_plan.stores.size()));
    const double t_sp_par =
        setup * static_cast<double>(sp_plan.stores.size()) +
        static_cast<double>(sp_total) /
            (streams * link * goodput.factor(sp_plan.stores.size()));
    const double t_ec = sequential_write_latency(ec.plan_write(0, rng), link, setup);
    const double t_sr = sequential_write_latency(sr.plan_write(0, rng), link, setup);
    const double t_ch = sequential_write_latency(ch.plan_write(0, rng), link, setup);

    t.add_row({static_cast<long long>(mb), t_sp, t_sp_par, t_ec, t_sr, t_ch, t_ec / t_sp,
               t_sr / t_sp, t_ch / t_sp});
    sum_ec += t_ec / t_sp;
    sum_repl += t_sr / t_sp;
    sum_chunk += t_ch / t_sp;
    ++rows;
  }
  t.print(std::cout);
  std::cout << "\nAverage slowdown vs SP-Cache:  EC-Cache " << sum_ec / rows
            << "x,  replication " << sum_repl / rows << "x,  4 MB chunking "
            << sum_chunk / rows << "x\n"
            << "Paper anchors: 1.77x (EC), 3.71x (replication), ~13% (4 MB chunking).\n";
  return 0;
}
