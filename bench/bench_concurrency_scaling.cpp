// Concurrency scaling of the threaded-cluster hot read path.
//
// Four implementations of the same whole-file read (LOOKUP + k piece GETs
// + integrity verification + reassembly) run the same workload at 1-32
// client threads, with each piece's transfer emulated as wall-clock time —
// the same NIC model (`Bytes / Bandwidth`) every other bench in this repo
// uses for data movement, here applied to the piece being served. The
// emulated links are 10 Gbps rather than the paper's 1 Gbps testbed: at
// 1 Gbps a 1 MB read sleeps ~8 ms against ~0.2 ms of CPU work, so the NIC
// hides the entire data plane; at 10 Gbps the per-byte CPU costs (copies,
// checksums, allocation) become the bottleneck at high thread counts,
// which is precisely the regime the kernel work targets:
//
//   global        "old-style global-lock" baseline: one mutex guards the
//                 metadata map and the block store. Without shared block
//                 ownership, serving a piece without copying it means the
//                 lock stays pinned while the piece is consumed (transfer
//                 + CRC verification) — release it mid-serve and a
//                 concurrent rename/erase/overwrite invalidates the bytes
//                 being read. Every in-flight read therefore serializes.
//   global_copy   the seed's actual compromise: same single mutex, but
//                 each piece is copied out while the lock is held, then
//                 verified/transferred/appended after release. Reads
//                 overlap, at the price of touching every byte twice on
//                 the CPU (copy-out + append) plus per-piece and
//                 whole-file CRC passes.
//   sharded       the sharded-hot-path PR: sharded master (shared locks +
//                 relaxed atomic access counters), striped stores whose
//                 get() returns std::shared_ptr<const Block> — the stripe
//                 lock drops before the piece is verified or transferred,
//                 and the bytes are copied exactly once, into their final
//                 offset. Whole-file integrity is a separate crc32 rescan
//                 of the reassembled bytes.
//   fused         the data-plane-kernels PR: same sharded stores, but each
//                 piece lands through the fused crc32_copy kernel (copy +
//                 checksum in one pass), the whole-file CRC is stitched
//                 from the per-piece CRCs in O(k) combine operations
//                 instead of a second 1 MB scan, and the reassembly buffer
//                 and combine operators live in a per-thread scratch — the
//                 steady-state read touches each byte once and never
//                 allocates.
//
// Reported per thread count: aggregate ops/sec and p99 end-to-end read
// latency per mode, plus sharded-vs-global speedup. On a single-core host
// the sharding itself (lock spreading) is barely visible — what the
// measurement isolates is the ownership change (drop the lock before the
// piece is consumed) and the single-copy read path; on multicore hosts
// the per-shard locks compound on top. Output: console table + CSV +
// machine-readable BENCH_concurrency.json.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <span>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "cluster/cache_server.h"
#include "cluster/master.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/table.h"

namespace spcache::bench {
namespace {

constexpr std::size_t kNServers = 8;
constexpr std::size_t kFiles = 48;
constexpr std::size_t kPieces = 4;
constexpr std::size_t kFileBytes = 1 << 20;  // 1 MB files, 256 kB pieces
constexpr double kMeasureSeconds = 0.8;
constexpr double kLinkGbps = 10.0;  // see header: fast NIC exposes the CPU data plane

using Clock = std::chrono::steady_clock;

// Emulate serving `n` bytes over the server NIC.
void transfer(Bytes n) {
  std::this_thread::sleep_for(
      std::chrono::duration<double>(static_cast<double>(n) / gbps(kLinkGbps)));
}

std::vector<std::uint8_t> file_payload(FileId id) {
  std::vector<std::uint8_t> v(kFileBytes);
  std::uint64_t s = mix64(id);
  for (std::size_t i = 0; i < v.size(); i += 8) {
    s = mix64(s);
    for (std::size_t b = 0; b < 8 && i + b < v.size(); ++b) {
      v[i + b] = static_cast<std::uint8_t>(s >> (8 * b));
    }
  }
  return v;
}

struct ModeResult {
  double ops_per_sec = 0.0;
  double p99_us = 0.0;
};

// ---------------------------------------------------------------------------
// Baselines: one mutex in front of seed-style maps (FileMeta by value,
// Block by value), exactly the pre-refactor data layout.
// ---------------------------------------------------------------------------
class GlobalLockStore {
 public:
  void populate(Rng& rng) {
    for (FileId id = 0; id < kFiles; ++id) {
      const auto data = file_payload(id);
      const auto picks = rng.sample_without_replacement(kNServers, kPieces);
      FileMeta meta;
      meta.size = data.size();
      meta.file_crc = crc32(data);
      const std::size_t piece_bytes = kFileBytes / kPieces;
      for (std::size_t i = 0; i < kPieces; ++i) {
        meta.servers.push_back(static_cast<std::uint32_t>(picks[i]));
        meta.piece_sizes.push_back(piece_bytes);
        std::vector<std::uint8_t> piece(
            data.begin() + static_cast<std::ptrdiff_t>(i * piece_bytes),
            data.begin() + static_cast<std::ptrdiff_t>((i + 1) * piece_bytes));
        const std::uint32_t crc = crc32(piece);
        blocks_[BlockKey{id, static_cast<PieceIndex>(i)}] = Block{std::move(piece), crc};
      }
      metas_[id] = std::move(meta);
    }
  }

  // "global": the lock is pinned across each piece's verify + transfer +
  // append, because the reference into the map is only valid while held.
  std::vector<std::uint8_t> read_locked_serve(FileId id) {
    FileMeta meta;
    {
      std::lock_guard lock(mu_);
      meta = metas_.at(id);
    }
    std::vector<std::uint8_t> out;
    out.reserve(meta.size);
    for (std::size_t i = 0; i < meta.partitions(); ++i) {
      std::lock_guard lock(mu_);
      const Block& block = blocks_.at(BlockKey{id, static_cast<PieceIndex>(i)});
      if (crc32(block.bytes) != block.crc) throw std::runtime_error("global: piece corrupt");
      transfer(block.bytes.size());
      out.insert(out.end(), block.bytes.begin(), block.bytes.end());
    }
    if (crc32(out) != meta.file_crc) throw std::runtime_error("global: file corrupt");
    return out;
  }

  // "global_copy": the seed's discipline — copy each piece out under the
  // lock, then verify/transfer/append unlocked.
  std::vector<std::uint8_t> read_copy_out(FileId id) {
    FileMeta meta;
    {
      std::lock_guard lock(mu_);
      meta = metas_.at(id);
    }
    std::vector<std::uint8_t> out;
    out.reserve(meta.size);
    for (std::size_t i = 0; i < meta.partitions(); ++i) {
      Block copy;
      {
        std::lock_guard lock(mu_);
        copy = blocks_.at(BlockKey{id, static_cast<PieceIndex>(i)});
      }
      if (crc32(copy.bytes) != copy.crc) throw std::runtime_error("global_copy: piece corrupt");
      transfer(copy.bytes.size());
      out.insert(out.end(), copy.bytes.begin(), copy.bytes.end());
    }
    if (crc32(out) != meta.file_crc) throw std::runtime_error("global_copy: file corrupt");
    return out;
  }

 private:
  std::mutex mu_;
  std::unordered_map<FileId, FileMeta> metas_;
  std::unordered_map<BlockKey, Block, BlockKeyHash> blocks_;
};

// ---------------------------------------------------------------------------
// The refactored path: sharded master lookup, striped zero-copy get() —
// CRC verification and the transfer happen on the shared block with no
// lock held, and each byte is copied once, to its final offset.
// ---------------------------------------------------------------------------
class ShardedReader {
 public:
  ShardedReader(Cluster& cluster, Master& master) : cluster_(cluster), master_(master) {}

  void populate(Rng& rng) {
    for (FileId id = 0; id < kFiles; ++id) {
      const auto data = file_payload(id);
      const auto picks = rng.sample_without_replacement(kNServers, kPieces);
      FileMeta meta;
      meta.size = data.size();
      meta.file_crc = crc32(data);
      const std::size_t piece_bytes = kFileBytes / kPieces;
      for (std::size_t i = 0; i < kPieces; ++i) {
        meta.servers.push_back(static_cast<std::uint32_t>(picks[i]));
        meta.piece_sizes.push_back(piece_bytes);
        cluster_.server(picks[i]).put(
            BlockKey{id, static_cast<PieceIndex>(i)},
            std::vector<std::uint8_t>(
                data.begin() + static_cast<std::ptrdiff_t>(i * piece_bytes),
                data.begin() + static_cast<std::ptrdiff_t>((i + 1) * piece_bytes)));
      }
      master_.register_file(id, std::move(meta));
    }
  }

  std::vector<std::uint8_t> read(FileId id) {
    const auto meta = master_.lookup_for_read(id);
    if (!meta) throw std::runtime_error("sharded: unknown file");
    std::vector<std::uint8_t> out(meta->size);
    Bytes offset = 0;
    for (std::size_t i = 0; i < meta->partitions(); ++i) {
      const auto block =
          cluster_.server(meta->servers[i]).get(BlockKey{id, static_cast<PieceIndex>(i)});
      if (!block) throw std::runtime_error("sharded: missing piece");
      transfer(block->bytes.size());
      std::copy(block->bytes.begin(), block->bytes.end(),
                out.begin() + static_cast<std::ptrdiff_t>(offset));
      offset += block->bytes.size();
    }
    if (crc32(out) != meta->file_crc) throw std::runtime_error("sharded: file corrupt");
    return out;
  }

 private:
  Cluster& cluster_;
  Master& master_;
};

// This PR's steady-state read: fused copy+CRC per piece, whole-file CRC by
// combination, reassembly buffer + combiner reused across reads (one
// Scratch per bench thread — zero heap allocations once warmed).
class FusedReader {
 public:
  struct Scratch {
    std::vector<std::uint8_t> out;
    std::array<std::uint32_t, kPieces> piece_crcs{};
    Crc32Combiner combiner;
  };

  FusedReader(Cluster& cluster, Master& master) : cluster_(cluster), master_(master) {}

  const std::vector<std::uint8_t>& read(FileId id, Scratch& s) {
    const auto meta = master_.lookup_for_read(id);
    if (!meta) throw std::runtime_error("fused: unknown file");
    s.out.resize(meta->size);
    Bytes offset = 0;
    for (std::size_t i = 0; i < meta->partitions(); ++i) {
      const auto block =
          cluster_.server(meta->servers[i]).get(BlockKey{id, static_cast<PieceIndex>(i)});
      if (!block) throw std::runtime_error("fused: missing piece");
      transfer(block->bytes.size());
      s.piece_crcs[i] = crc32_copy(
          std::span<std::uint8_t>(s.out.data() + offset, block->bytes.size()), block->bytes);
      offset += block->bytes.size();
    }
    std::uint32_t whole = s.piece_crcs[0];
    for (std::size_t i = 1; i < meta->partitions(); ++i) {
      whole = s.combiner.combine(whole, s.piece_crcs[i], meta->piece_sizes[i]);
    }
    if (whole != meta->file_crc) throw std::runtime_error("fused: file corrupt");
    return s.out;
  }

 private:
  Cluster& cluster_;
  Master& master_;
};

template <typename ReadFn>
ModeResult run_mode(ReadFn&& read_one, std::size_t n_threads) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(n_threads, 0);
  std::vector<std::vector<double>> latencies(n_threads);

  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5eed + t);
      auto& lat = latencies[t];
      lat.reserve(1 << 12);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const FileId id = static_cast<FileId>(rng.uniform_index(kFiles));
        const auto op_start = Clock::now();
        const auto& bytes = read_one(id);
        const auto op_end = Clock::now();
        if (bytes.size() != kFileBytes) throw std::runtime_error("bench: short read");
        ++ops[t];
        lat.push_back(std::chrono::duration<double, std::micro>(op_end - op_start).count());
      }
    });
  }

  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  while (std::chrono::duration<double>(Clock::now() - start).count() < kMeasureSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  ModeResult result;
  std::uint64_t total_ops = 0;
  std::vector<double> all;
  for (std::size_t t = 0; t < n_threads; ++t) {
    total_ops += ops[t];
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
  }
  result.ops_per_sec = static_cast<double>(total_ops) / elapsed;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    result.p99_us = all[std::min(all.size() - 1,
                                 static_cast<std::size_t>(0.99 * static_cast<double>(all.size())))];
  }
  return result;
}

}  // namespace
}  // namespace spcache::bench

int main() {
  using namespace spcache;
  using namespace spcache::bench;

  print_experiment_header(
      std::cout, "Concurrency scaling",
      "Aggregate read throughput and p99 latency vs client threads, pieces\n"
      "served over emulated 10 Gbps links: global-lock baseline (lock pinned\n"
      "while each piece is served), the seed's copy-out-under-lock variant,\n"
      "the sharded zero-copy path, and this PR's fused kernel path. " +
          std::to_string(kFiles) + " files x " + std::to_string(kFileBytes / 1024) +
          " kB, k=" + std::to_string(kPieces) + ", " + std::to_string(kNServers) + " servers.");

  Cluster cluster(kNServers, gbps(kLinkGbps));
  Master master;
  Rng rng(17);

  GlobalLockStore baseline;
  baseline.populate(rng);
  ShardedReader sharded(cluster, master);
  sharded.populate(rng);
  FusedReader fused(cluster, master);

  // Warm-up all four paths.
  for (FileId id = 0; id < 4; ++id) {
    (void)baseline.read_locked_serve(id);
    (void)baseline.read_copy_out(id);
    (void)sharded.read(id);
    FusedReader::Scratch warm;
    (void)fused.read(id, warm);
  }

  Table table({"threads", "global_ops_s", "copy_ops_s", "sharded_ops_s", "fused_ops_s",
               "fused_p99_ms", "speedup", "fused_gain"});
  table.set_precision(4);
  std::vector<JsonRow> json_rows;

  for (const std::size_t n_threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto global =
        run_mode([&](FileId id) { return baseline.read_locked_serve(id); }, n_threads);
    const auto copy = run_mode([&](FileId id) { return baseline.read_copy_out(id); }, n_threads);
    const auto shard = run_mode([&](FileId id) { return sharded.read(id); }, n_threads);
    const auto fuse = run_mode(
        [&](FileId id) -> const std::vector<std::uint8_t>& {
          thread_local FusedReader::Scratch scratch;
          return fused.read(id, scratch);
        },
        n_threads);
    const double speedup = global.ops_per_sec > 0 ? fuse.ops_per_sec / global.ops_per_sec : 0.0;
    // The data-plane PR's win over the sharded (previous-PR) read path.
    const double fused_gain =
        shard.ops_per_sec > 0 ? fuse.ops_per_sec / shard.ops_per_sec : 0.0;
    table.add_row({static_cast<long long>(n_threads), global.ops_per_sec, copy.ops_per_sec,
                   shard.ops_per_sec, fuse.ops_per_sec, fuse.p99_us / 1e3, speedup, fused_gain});
    json_rows.push_back(JsonRow{{"threads", static_cast<double>(n_threads)},
                                {"global_ops_per_sec", global.ops_per_sec},
                                {"global_p99_us", global.p99_us},
                                {"global_copy_ops_per_sec", copy.ops_per_sec},
                                {"global_copy_p99_us", copy.p99_us},
                                {"sharded_ops_per_sec", shard.ops_per_sec},
                                {"sharded_p99_us", shard.p99_us},
                                {"fused_ops_per_sec", fuse.ops_per_sec},
                                {"fused_p99_us", fuse.p99_us},
                                {"speedup", speedup},
                                {"fused_gain_over_sharded", fused_gain}});
  }

  table.print(std::cout);
  std::cout << "\n";
  table.print_csv(std::cout);
  const auto path = write_json_report("concurrency", json_rows);
  std::cout << "\nwrote " << path << "\n";
  return 0;
}
