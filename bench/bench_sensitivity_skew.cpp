// Sensitivity: how the SP-vs-baselines comparison moves with popularity
// skew.
//
// The paper fixes Zipf exponents of 1.05/1.1 ("high skewness") citing
// production measurements; this sweep shows the comparison is not an
// artifact of that choice: SP-Cache's lead grows with skew (more
// concentrated load = more value in selective splitting) and survives even
// mild skew.
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"
#include "math/zipf_fit.h"
#include "workload/zipf.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Sensitivity: popularity skew",
                          "Mean latency and imbalance vs Zipf exponent at rate 14 "
                          "(500 x 100 MB files), plus the MLE recovering the exponent "
                          "from simulated access counts.");

  Table t({"zipf_exponent", "fitted_exponent", "sp_mean", "ec_mean", "repl_mean",
           "sp_imbalance", "ec_imbalance"});
  for (double s : {0.7, 0.9, 1.05, 1.2, 1.4}) {
    const auto cat = make_uniform_catalog(500, 100 * kMB, s, 14.0);

    // Sanity loop an operator would run: sample the workload, re-estimate
    // the skew from counts (the SP-Master's view).
    ZipfDistribution zipf(500, s);
    Rng count_rng(6001);
    std::vector<std::uint64_t> counts(500, 0);
    for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(count_rng)];
    const auto fit = fit_zipf(counts);

    SpCacheScheme sp;
    EcCacheScheme ec;
    SelectiveReplicationScheme sr;
    const auto r_sp = run_experiment(sp, cat, 8000, default_sim_config(6002), 6003);
    const auto r_ec = run_experiment(ec, cat, 8000, default_sim_config(6002), 6003);
    const auto r_sr = run_experiment(sr, cat, 8000, default_sim_config(6002), 6003);
    t.add_row({s, fit.exponent, r_sp.mean, r_ec.mean, r_sr.mean, r_sp.imbalance,
               r_ec.imbalance});
  }
  t.print(std::cout);
  std::cout << "\nExpected: SP-Cache leads at every skew; the margin over the redundant\n"
               "baselines widens as the exponent (and hence the hot-spot pressure)\n"
               "grows; the MLE tracks the configured exponent within a few percent.\n";
  return 0;
}
