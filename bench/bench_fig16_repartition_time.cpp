// Fig. 16: completion time of sequential vs parallel vs delta repartition
// (Section 7.4).
//
// Setup per the paper: files of 50 MB, catalog size swept 100..350; the
// popularity ranks are randomly shuffled (a much more drastic shift than
// production traces show) and the layout is re-balanced either
//   (a) sequentially — the master collects and re-splits EVERY file over
//       its own NIC,
//   (b) in parallel — per-server SP-Repartitioners handle only the files
//       whose partition count changed, each seeded with a local piece, or
//   (c) with delta transfers — only the byte ranges whose server changes
//       move (peer to peer), staged under epoch+1 and published in one
//       short cutover; overlap with the old layout is free.
//
// The threaded cluster moves real bytes (1 MB per file here, for memory
// reasons); reported times are the modelled network times scaled to the
// paper's 50 MB files — the modelled time is linear in bytes moved.
//
// Expected shape: sequential time grows linearly into the hundreds of
// seconds (~319 s at 350 files in the paper); parallel repartition stays
// near-constant at ~2-3 s. Delta repartition moves ~25% fewer bytes even
// on the drastic shuffle (the assemble leg's local piece and the overlap
// with reused servers are free) and >=30% fewer on the online-adjust
// workload; its modelled time stays in the parallel executor's band (the
// fewer bytes concentrate on the receiving NICs).
//
// `--smoke` shrinks the sweep for CI (tools/check.sh) and enforces the
// headline claim: delta bytes_moved <= 0.7x the rewrite executor's.
#include <algorithm>
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "cluster/client.h"
#include "cluster/repartition_exec.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

constexpr Bytes kRealBytesPerFile = 1 * kMB;
constexpr double kSizeScale = 50.0;  // report as if files were 50 MB

struct Bed {
  Cluster cluster{kServers, gbps(1.0)};
  Master master;
  ThreadPool pool{4};
  Catalog catalog;
  std::vector<std::size_t> k;
  std::vector<std::vector<std::uint32_t>> servers;
};

void populate(Bed& bed, std::size_t n_files, Rng& rng) {
  bed.catalog = make_uniform_catalog(n_files, kRealBytesPerFile, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(bed.catalog, bed.cluster.bandwidths(), rng);
  bed.k = sp.partition_counts();
  bed.servers.clear();
  SpClient client(bed.cluster, bed.master, bed.pool);
  std::vector<std::uint8_t> payload(kRealBytesPerFile);
  for (std::size_t b = 0; b < payload.size(); ++b) payload[b] = static_cast<std::uint8_t>(b);
  for (FileId f = 0; f < n_files; ++f) {
    client.write(f, payload, sp.placement(f).servers);
    bed.servers.push_back(sp.placement(f).servers);
  }
}

// One repartition trial under a fresh bed with the given seed; `run` maps
// a (bed, plan) to the executor's stats.
template <typename Run>
RepartitionStats trial(std::size_t n, std::uint64_t seed, Run&& run) {
  Rng rng(seed);
  Bed bed;
  populate(bed, n, rng);
  bed.catalog.shuffle_popularities(rng);
  const auto plan = plan_repartition(bed.catalog, bed.cluster.bandwidths(), bed.k, bed.servers,
                                     ScaleFactorConfig{}, rng);
  return run(bed, plan, rng);
}

// The Zipf online-adjust workload: popularity drift changes each file's
// k_i, but the placement is adjusted in place — a shrinking file keeps a
// prefix of its servers, a growing file keeps all of them and adds fresh
// ones. Algorithm 2's from-scratch planner would relocate every changed
// file wholesale (it avoids current holders by design); the in-place plan
// is what the online adjuster actually produces, and it is where delta
// transfers shine: only the bytes that slide across a piece boundary onto
// a different server move.
template <typename Run>
RepartitionStats adjust_trial(std::size_t n, std::uint64_t seed, Run&& run) {
  Rng rng(seed);
  Bed bed;
  populate(bed, n, rng);
  bed.catalog.shuffle_popularities(rng);
  const auto scratch = plan_repartition(bed.catalog, bed.cluster.bandwidths(), bed.k, bed.servers,
                                        ScaleFactorConfig{}, rng);
  RepartitionPlan plan;
  plan.alpha = scratch.alpha;
  plan.new_k = scratch.new_k;
  for (const FileId f : scratch.changed_files) {
    const std::size_t new_k = scratch.new_k[f];
    auto servers = bed.servers[f];
    if (new_k <= servers.size()) {
      servers.resize(new_k);
    } else {
      while (servers.size() < new_k) {
        std::uint32_t s;
        do {
          s = static_cast<std::uint32_t>(rng.uniform_index(kServers));
        } while (std::find(servers.begin(), servers.end(), s) != servers.end());
        servers.push_back(s);
      }
    }
    plan.changed_files.push_back(f);
    plan.new_servers.push_back(std::move(servers));
    plan.executor.push_back(bed.servers[f][rng.uniform_index(bed.servers[f].size())]);
  }
  return run(bed, plan, rng);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_experiment_header(std::cout, "Fig. 16",
                          "Completion time of sequential vs parallel vs delta repartition "
                          "after a popularity shift (real data movement, times scaled to "
                          "50 MB files). 3 trials per point; min/max spread.");

  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{80} : std::vector<std::size_t>{100, 150, 200, 250, 300, 350};
  const int trials = smoke ? 1 : 3;

  Table t({"files", "parallel_mean_s", "parallel_min_s", "parallel_max_s", "delta_mean_s",
           "delta_bytes_frac", "sequential_mean_s", "speedup"});
  std::vector<JsonRow> json_rows;
  for (const std::size_t n : sweep) {
    Sample par, del, seq;
    Bytes par_bytes = 0, del_bytes = 0, del_saved = 0;
    double max_cutover = 0.0;
    for (int trial_i = 0; trial_i < trials; ++trial_i) {
      const std::uint64_t seed = 1600 + n + static_cast<std::uint64_t>(trial_i);
      const auto sp = trial(n, seed, [](Bed& bed, const RepartitionPlan& plan, Rng&) {
        return execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
      });
      par.add(sp.modelled_time * kSizeScale);
      par_bytes += sp.bytes_moved;
      const auto sd = trial(n, seed, [](Bed& bed, const RepartitionPlan& plan, Rng&) {
        return execute_delta_repartition(bed.cluster, bed.master, plan, bed.pool);
      });
      del.add(sd.modelled_time * kSizeScale);
      del_bytes += sd.bytes_moved;
      del_saved += sd.bytes_saved;
      max_cutover = std::max(max_cutover, sd.max_cutover_time);
      const auto ss = trial(n, seed, [](Bed& bed, const RepartitionPlan& plan, Rng& rng) {
        return execute_sequential_repartition(bed.cluster, bed.master, plan, gbps(1.0), rng);
      });
      seq.add(ss.modelled_time * kSizeScale);
    }
    const double bytes_frac =
        par_bytes > 0 ? static_cast<double>(del_bytes) / static_cast<double>(par_bytes) : 0.0;
    t.add_row({static_cast<long long>(n), par.mean(), par.min(), par.max(), del.mean(),
               bytes_frac, seq.mean(), par.mean() > 0 ? seq.mean() / par.mean() : 0.0});
    json_rows.push_back(JsonRow{text_field("workload", "shift"),
                                {"files", static_cast<double>(n)},
                                {"parallel_mean_s", par.mean()},
                                {"delta_mean_s", del.mean()},
                                {"sequential_mean_s", seq.mean()},
                                {"parallel_bytes_moved", static_cast<double>(par_bytes)},
                                {"delta_bytes_moved", static_cast<double>(del_bytes)},
                                {"delta_bytes_saved", static_cast<double>(del_saved)},
                                {"delta_bytes_frac", bytes_frac},
                                {"delta_max_cutover_us", max_cutover * 1e6}});
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors: sequential repartition takes ~319 s at 350 files and\n"
               "grows linearly; parallel repartition finishes in < ~3 s and stays flat.\n"
               "Delta repartition ships only server-changing byte ranges, cutting the\n"
               "bytes moved while readers keep serving the old layout until a short\n"
               "epoch cutover.\n";

  // Zipf online-adjust workload: k_i drifts, placements adjusted in place.
  // This is the regime delta repartitioning targets — the rewrite executor
  // still assembles and scatters each changed file, while delta ships only
  // the boundary-sliding ranges.
  std::cout << "\nOnline adjust (in-place placement, k drift only):\n";
  Table ta({"files", "parallel_bytes_mb", "delta_bytes_mb", "reduction", "delta_saved_mb",
            "delta_max_cutover_us"});
  const std::size_t adjust_n = smoke ? 80 : 200;
  Bytes apar_bytes = 0, adel_bytes = 0, adel_saved = 0;
  double adel_cutover = 0.0;
  for (int trial_i = 0; trial_i < trials; ++trial_i) {
    const std::uint64_t seed = 1700 + static_cast<std::uint64_t>(trial_i);
    const auto sp = adjust_trial(adjust_n, seed, [](Bed& bed, const RepartitionPlan& plan, Rng&) {
      return execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
    });
    apar_bytes += sp.bytes_moved;
    const auto sd = adjust_trial(adjust_n, seed, [](Bed& bed, const RepartitionPlan& plan, Rng&) {
      return execute_delta_repartition(bed.cluster, bed.master, plan, bed.pool);
    });
    adel_bytes += sd.bytes_moved;
    adel_saved += sd.bytes_saved;
    adel_cutover = std::max(adel_cutover, sd.max_cutover_time);
  }
  const double reduction =
      apar_bytes > 0 ? 1.0 - static_cast<double>(adel_bytes) / static_cast<double>(apar_bytes)
                     : 0.0;
  ta.add_row({static_cast<long long>(adjust_n),
              static_cast<double>(apar_bytes) / static_cast<double>(kMB),
              static_cast<double>(adel_bytes) / static_cast<double>(kMB), reduction,
              static_cast<double>(adel_saved) / static_cast<double>(kMB), adel_cutover * 1e6});
  ta.print(std::cout);
  json_rows.push_back(JsonRow{text_field("workload", "online_adjust"),
                              {"files", static_cast<double>(adjust_n)},
                              {"parallel_bytes_moved", static_cast<double>(apar_bytes)},
                              {"delta_bytes_moved", static_cast<double>(adel_bytes)},
                              {"delta_bytes_saved", static_cast<double>(adel_saved)},
                              {"delta_bytes_reduction", reduction},
                              {"delta_max_cutover_us", adel_cutover * 1e6}});

  const auto path = write_json_report("repartition", json_rows);
  std::cout << "wrote " << path << "\n";

  if (smoke && reduction < 0.3) {
    std::cerr << "FAIL: delta repartition cut only " << reduction * 100.0
              << "% of the rewrite executor's bytes on the online-adjust workload "
                 "(need >= 30%)\n";
    return 1;
  }
  return 0;
}
