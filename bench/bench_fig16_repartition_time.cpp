// Fig. 16: completion time of sequential vs parallel repartition
// (Section 7.4).
//
// Setup per the paper: files of 50 MB, catalog size swept 100..350; the
// popularity ranks are randomly shuffled (a much more drastic shift than
// production traces show) and the layout is re-balanced either
//   (a) sequentially — the master collects and re-splits EVERY file over
//       its own NIC, or
//   (b) in parallel — per-server SP-Repartitioners handle only the files
//       whose partition count changed, each seeded with a local piece.
//
// The threaded cluster moves real bytes (1 MB per file here, for memory
// reasons); reported times are the modelled network times scaled to the
// paper's 50 MB files — the modelled time is linear in bytes moved.
//
// Expected shape: sequential time grows linearly into the hundreds of
// seconds (~319 s at 350 files in the paper); parallel repartition stays
// near-constant at ~2-3 s — two orders of magnitude faster.
#include <iostream>

#include "bench_common.h"
#include "cluster/client.h"
#include "cluster/repartition_exec.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

namespace {

constexpr Bytes kRealBytesPerFile = 1 * kMB;
constexpr double kSizeScale = 50.0;  // report as if files were 50 MB

struct Bed {
  Cluster cluster{kServers, gbps(1.0)};
  Master master;
  ThreadPool pool{4};
  Catalog catalog;
  std::vector<std::size_t> k;
  std::vector<std::vector<std::uint32_t>> servers;
};

void populate(Bed& bed, std::size_t n_files, Rng& rng) {
  bed.catalog = make_uniform_catalog(n_files, kRealBytesPerFile, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(bed.catalog, bed.cluster.bandwidths(), rng);
  bed.k = sp.partition_counts();
  bed.servers.clear();
  SpClient client(bed.cluster, bed.master, bed.pool);
  std::vector<std::uint8_t> payload(kRealBytesPerFile);
  for (std::size_t b = 0; b < payload.size(); ++b) payload[b] = static_cast<std::uint8_t>(b);
  for (FileId f = 0; f < n_files; ++f) {
    client.write(f, payload, sp.placement(f).servers);
    bed.servers.push_back(sp.placement(f).servers);
  }
}

}  // namespace

int main() {
  print_experiment_header(std::cout, "Fig. 16",
                          "Completion time of sequential vs parallel repartition after a "
                          "popularity shift (real data movement, times scaled to 50 MB "
                          "files). 3 trials per point; min/max spread.");

  Table t({"files", "parallel_mean_s", "parallel_min_s", "parallel_max_s", "sequential_mean_s",
           "speedup"});
  for (std::size_t n : {100u, 150u, 200u, 250u, 300u, 350u}) {
    Sample par, seq;
    for (int trial = 0; trial < 3; ++trial) {
      Rng rng(1600 + n + static_cast<std::uint64_t>(trial));
      {
        Bed bed;
        populate(bed, n, rng);
        bed.catalog.shuffle_popularities(rng);
        const auto plan = plan_repartition(bed.catalog, bed.cluster.bandwidths(), bed.k,
                                           bed.servers, ScaleFactorConfig{}, rng);
        const auto stats = execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
        par.add(stats.modelled_time * kSizeScale);
      }
      {
        Bed bed;
        populate(bed, n, rng);
        bed.catalog.shuffle_popularities(rng);
        const auto plan = plan_repartition(bed.catalog, bed.cluster.bandwidths(), bed.k,
                                           bed.servers, ScaleFactorConfig{}, rng);
        const auto stats = execute_sequential_repartition(bed.cluster, bed.master, plan,
                                                          gbps(1.0), rng);
        seq.add(stats.modelled_time * kSizeScale);
      }
    }
    t.add_row({static_cast<long long>(n), par.mean(), par.min(), par.max(), seq.mean(),
               par.mean() > 0 ? seq.mean() / par.mean() : 0.0});
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors: sequential repartition takes ~319 s at 350 files and\n"
               "grows linearly; parallel repartition finishes in < ~3 s and stays flat —\n"
               "a two-order-of-magnitude speedup.\n";
  return 0;
}
