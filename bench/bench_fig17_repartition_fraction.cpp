// Fig. 17: fraction of files that need repartitioning after a popularity
// shift (Section 7.4).
//
// After shuffling the popularity ranks, only files whose partition count
// k_i = ceil(alpha * L_i) changes are touched by the parallel repartitioner.
// Expected shape: the fraction decreases as the catalog grows — the cold
// tail (k = 1 before and after any shuffle) dominates larger catalogs.
#include <cstring>
#include <iostream>

#include "bench_common.h"
#include "core/repartition.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main(int argc, char** argv) {
  bool smoke = false;  // CI mode (tools/check.sh): one sweep point, 3 trials
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_experiment_header(std::cout, "Fig. 17",
                          "Fraction of files repartitioned after a random popularity "
                          "shuffle, vs catalog size. 10 trials; mean with p5/p95.");

  const std::vector<Bandwidth> bw(kServers, gbps(1.0));

  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{100}
            : std::vector<std::size_t>{100, 150, 200, 250, 300, 350, 500, 1000};
  const int trials = smoke ? 3 : 10;

  Table t({"files", "mean_fraction", "p5", "p95"});
  for (std::size_t n : sweep) {
    Sample fractions;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(1700 + n * 13 + static_cast<std::uint64_t>(trial));
      auto cat = make_uniform_catalog(n, 50 * kMB, 1.05, 10.0);
      SpCacheScheme sp;
      sp.place(cat, bw, rng);
      std::vector<std::vector<std::uint32_t>> servers;
      servers.reserve(n);
      for (const auto& p : sp.placements()) servers.push_back(p.servers);
      cat.shuffle_popularities(rng);
      const auto plan = plan_repartition(cat, bw, sp.partition_counts(), servers,
                                         ScaleFactorConfig{}, rng);
      fractions.add(plan.changed_fraction(n));
    }
    t.add_row({static_cast<long long>(n), fractions.mean(), fractions.percentile(0.05),
               fractions.percentile(0.95)});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: the repartitioned fraction shrinks as the catalog grows,\n"
               "which is what keeps parallel re-balancing cheap at scale.\n";
  return 0;
}
