// Fig. 17: fraction of files that need repartitioning after a popularity
// shift (Section 7.4).
//
// After shuffling the popularity ranks, only files whose partition count
// k_i = ceil(alpha * L_i) changes are touched by the parallel repartitioner.
// Expected shape: the fraction decreases as the catalog grows — the cold
// tail (k = 1 before and after any shuffle) dominates larger catalogs.
#include <iostream>

#include "bench_common.h"
#include "core/repartition.h"
#include "core/sp_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Fig. 17",
                          "Fraction of files repartitioned after a random popularity "
                          "shuffle, vs catalog size. 10 trials; mean with p5/p95.");

  const std::vector<Bandwidth> bw(kServers, gbps(1.0));

  Table t({"files", "mean_fraction", "p5", "p95"});
  for (std::size_t n : {100u, 150u, 200u, 250u, 300u, 350u, 500u, 1000u}) {
    Sample fractions;
    for (int trial = 0; trial < 10; ++trial) {
      Rng rng(1700 + n * 13 + static_cast<std::uint64_t>(trial));
      auto cat = make_uniform_catalog(n, 50 * kMB, 1.05, 10.0);
      SpCacheScheme sp;
      sp.place(cat, bw, rng);
      std::vector<std::vector<std::uint32_t>> servers;
      servers.reserve(n);
      for (const auto& p : sp.placements()) servers.push_back(p.servers);
      cat.shuffle_popularities(rng);
      const auto plan = plan_repartition(cat, bw, sp.partition_counts(), servers,
                                         ScaleFactorConfig{}, rng);
      fractions.add(plan.changed_fraction(n));
    }
    t.add_row({static_cast<long long>(n), fractions.mean(), fractions.percentile(0.05),
               fractions.percentile(0.95)});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: the repartitioned fraction shrinks as the catalog grows,\n"
               "which is what keeps parallel re-balancing cheap at scale.\n";
  return 0;
}
