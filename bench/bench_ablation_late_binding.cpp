// Ablation: EC-Cache's late binding (Section 3.2).
//
// EC-Cache reads k + delta of its n coded shards and decodes from the k
// fastest. delta = 0 removes the straggler hedge (any slow shard stalls the
// read); delta = 1 is the paper's setting; larger deltas waste bandwidth
// for diminishing returns. Run with injected stragglers to expose the
// trade-off in the tail.
#include <iostream>

#include "bench_common.h"
#include "core/ec_cache.h"

using namespace spcache;
using namespace spcache::bench;

int main() {
  print_experiment_header(std::cout, "Ablation: late binding",
                          "EC-Cache reading k+delta of n=14 shards under injected "
                          "stragglers (p=0.05), rate 10.");

  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, 10.0);

  Table t({"delta", "mean_s", "p95_s", "p99_s"});
  for (std::size_t delta : {0u, 1u, 2u, 4u}) {
    EcCacheConfig cfg;
    cfg.late_binding_extra = delta;
    EcCacheScheme ec(cfg);
    auto sim_cfg = default_sim_config(3101);
    sim_cfg.stragglers = StragglerModel::bing(0.05);
    const auto r = run_experiment(ec, cat, 9000, sim_cfg, 3102);
    t.add_row({static_cast<long long>(delta), r.mean, r.p95, r.latencies.percentile(0.99)});
  }
  t.print(std::cout);
  std::cout << "\nExpected: delta=0 suffers in the tail (any straggling shard stalls the\n"
               "join); delta=1 buys most of the hedge; larger deltas add load for\n"
               "little further gain — matching EC-Cache's choice of k+1.\n";
  return 0;
}
