// Fault-tolerance cost accounting (Section 8 "Fault Tolerance").
//
// Three measurements on the threaded cluster:
//
//   healthy    baseline whole-file reads on an intact 16-server cluster —
//              wall-clock and modelled (1 Gbps fork-join) latency.
//   degraded   the same reads after one piece of every file is lost: the
//              client retries, then fails over to an inline restore from
//              the (slow, 400 Mbps) stable store. This is the price a
//              reader pays *during* the detection+repair window.
//   repair     kill one server outright and let the HealthMonitor →
//              RecoveryManager pipeline notice and re-place every lost
//              partition from stable storage: wall-clock time from kill
//              to all-healthy, plus the modelled repair seconds and the
//              post-repair (fully healed) read latency.
//
// Output: console table + BENCH_recovery.json.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include <fstream>

#include "bench_common.h"
#include "cluster/client.h"
#include "cluster/health_monitor.h"
#include "cluster/stable_store.h"
#include "common/table.h"
#include "core/sp_cache.h"
#include "obs/cluster_observer.h"
#include "obs/trace.h"

namespace spcache::bench {
namespace {

constexpr std::size_t kNServers = 16;
constexpr std::size_t kFiles = 32;
constexpr Bytes kFileBytes = 256 * kKB;

using Clock = std::chrono::steady_clock;

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

struct ReadSample {
  double wall_ms = 0.0;      // mean wall-clock per read
  double modelled_ms = 0.0;  // mean modelled network time per read
  double degraded_frac = 0.0;
  // Per-phase wall-latency percentiles: the delta between the registry's
  // "client.read_s" histogram before and after this phase's reads.
  obs::HistogramSnapshot latency;
};

ReadSample read_all(SpClient& client, const obs::MetricsRegistry& registry) {
  ReadSample s;
  std::size_t degraded = 0;
  const auto before = registry.snapshot();
  const auto t0 = Clock::now();
  for (FileId f = 0; f < kFiles; ++f) {
    const auto result = client.read(f);
    s.modelled_ms += result.network_time * 1e3;
    if (result.degraded) ++degraded;
  }
  const std::chrono::duration<double, std::milli> wall = Clock::now() - t0;
  const auto after = registry.snapshot();
  const auto* h0 = before.histogram_named(obs::names::kClientReadLatency);
  const auto* h1 = after.histogram_named(obs::names::kClientReadLatency);
  if (h1) s.latency = h0 ? h1->minus(*h0) : *h1;
  s.wall_ms = wall.count() / static_cast<double>(kFiles);
  s.modelled_ms /= static_cast<double>(kFiles);
  s.degraded_frac = static_cast<double>(degraded) / static_cast<double>(kFiles);
  return s;
}

}  // namespace
}  // namespace spcache::bench

int main() {
  using namespace spcache;
  using namespace spcache::bench;

  print_experiment_header(std::cout, "Recovery",
                          "Degraded-read and self-healing repair cost: healthy vs "
                          "stable-failover reads, and heartbeat-to-healed repair time "
                          "(16 servers, 1 Gbps links, 400 Mbps stable store).");

  Cluster cluster(kNServers, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  StableStore stable;  // 400 Mbps restore path
  Rng rng(8080);
  obs::MetricsRegistry registry;
  obs::TraceRecorder trace;

  auto catalog = make_uniform_catalog(kFiles, kFileBytes, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient writer(cluster, master, pool);
  for (FileId f = 0; f < kFiles; ++f) {
    const auto data = pattern_bytes(kFileBytes, f);
    writer.write(f, data, sp.placement(f).servers);
    stable.checkpoint(f, data);
  }

  fault::RetryPolicy retry;
  retry.piece_attempts = 2;
  retry.base_backoff = std::chrono::microseconds(50);
  retry.max_backoff = std::chrono::microseconds(400);
  SpClient client(cluster, master, pool, &stable, retry);

  // Instrument the whole pipeline; per-phase latency comes from snapshot
  // deltas, repair spans from the monitor's detect-to-repair histogram.
  cluster.attach_observability(&registry);
  master.attach_observability(&registry);
  client.attach_observability(&registry, &trace);

  // --- healthy baseline -------------------------------------------------
  const auto healthy = read_all(client, registry);

  // --- degraded: every file loses one piece ----------------------------
  for (FileId f = 0; f < kFiles; ++f) {
    const auto meta = master.peek(f);
    cluster.server(meta->servers[0]).erase(BlockKey{f, 0});
  }
  const auto degraded = read_all(client, registry);

  // Heal the self-inflicted losses before the server-kill experiment.
  RecoveryManager recovery(cluster, master, stable);
  recovery.attach_observability(&registry);
  for (FileId f = 0; f < kFiles; ++f) (void)recovery.repair_file(f);

  // --- repair: kill a server, let the monitor heal the cluster ---------
  HealthMonitorConfig mon_cfg;
  mon_cfg.heartbeat_interval = std::chrono::milliseconds(1);
  mon_cfg.missed_beats_to_declare_dead = 3;
  HealthMonitor monitor(cluster, recovery, mon_cfg);
  monitor.attach_observability(&registry, &trace);
  monitor.start();

  // Kill the server carrying the most bytes so the repair has real work.
  std::uint32_t victim = 0;
  for (std::uint32_t s = 1; s < kNServers; ++s) {
    if (cluster.server(s).bytes_stored() > cluster.server(victim).bytes_stored()) victim = s;
  }
  const auto kill_t0 = Clock::now();
  cluster.kill(victim);
  // Wall clock from the kill to the monitor finishing the automatic
  // repair (detection via K missed heartbeats + re-placement of every
  // lost partition from stable storage).
  while (monitor.stats().repairs_completed == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::chrono::duration<double, std::milli> repair_wall = Clock::now() - kill_t0;
  cluster.revive(victim);
  (void)monitor.wait_all_healthy(std::chrono::seconds(5));
  const auto hs = monitor.stats();
  monitor.stop();

  const auto healed = read_all(client, registry);

  Table t({"phase", "wall_ms_per_read", "p50_ms", "p95_ms", "p99_ms",
           "modelled_ms_per_read", "degraded_frac"});
  const auto phase_row = [&t](const char* name, const ReadSample& s) {
    t.add_row({std::string(name), s.wall_ms, s.latency.percentile(0.50) * 1e3,
               s.latency.percentile(0.95) * 1e3, s.latency.percentile(0.99) * 1e3,
               s.modelled_ms, s.degraded_frac});
  };
  phase_row("healthy", healthy);
  phase_row("degraded", degraded);
  phase_row("post_repair", healed);
  t.print(std::cout);

  // Observer-reported repair span: heartbeat-declared death to repair done,
  // straight off the monitor's detect-to-repair histogram.
  const auto final_snapshot = registry.snapshot();
  double span_p50_ms = 0.0, span_max_ms = 0.0;
  if (const auto* span = final_snapshot.histogram_named(obs::names::kMonitorRepairSpan)) {
    span_p50_ms = span->percentile(0.50) * 1e3;
    span_max_ms = span->percentile(1.0) * 1e3;
  }

  std::cout << "\nself-healing repair after killing the most-loaded server:\n"
            << "  wall time (kill -> all healthy): " << repair_wall.count() << " ms\n"
            << "  detect-to-repair span (p50/max): " << span_p50_ms << " / " << span_max_ms
            << " ms\n"
            << "  pieces recovered:                " << hs.pieces_recovered << "\n"
            << "  modelled repair time:            " << hs.modelled_repair_time * 1e3
            << " ms\n"
            << "  degraded read penalty:           "
            << degraded.modelled_ms / healthy.modelled_ms << "x modelled, "
            << degraded.wall_ms / healthy.wall_ms << "x wall\n"
            << "  trace events recorded:           " << trace.recorded() << " (dropped "
            << trace.dropped() << ")\n";

  std::vector<JsonRow> rows;
  JsonRow row{{"healthy_wall_ms", healthy.wall_ms},
              {"healthy_modelled_ms", healthy.modelled_ms},
              {"degraded_wall_ms", degraded.wall_ms},
              {"degraded_modelled_ms", degraded.modelled_ms},
              {"degraded_frac", degraded.degraded_frac},
              {"post_repair_wall_ms", healed.wall_ms},
              {"post_repair_modelled_ms", healed.modelled_ms},
              {"repair_wall_ms", repair_wall.count()},
              {"repair_span_p50_ms", span_p50_ms},
              {"repair_span_max_ms", span_max_ms},
              {"repair_modelled_ms", hs.modelled_repair_time * 1e3},
              {"pieces_recovered", static_cast<double>(hs.pieces_recovered)},
              {"deaths_declared", static_cast<double>(hs.deaths_declared)}};
  append_percentiles(row, "healthy_read_ms_", healthy.latency, 1e3);
  append_percentiles(row, "degraded_read_ms_", degraded.latency, 1e3);
  append_percentiles(row, "post_repair_read_ms_", healed.latency, 1e3);
  rows.push_back(std::move(row));
  const auto path = write_json_report("recovery", rows);
  std::cout << "\nwrote " << path << "\n";

  // Full cluster snapshot + recent trace tail for post-mortem inspection
  // (the README's "dump a metrics snapshot after a chaos run" example).
  obs::ClusterObserver observer(registry);
  const auto stats = observer.collect(cluster.served_bytes());
  std::ofstream dump("BENCH_recovery_observer.json");
  dump << "{\"cluster\": " << obs::ClusterObserver::to_json(stats)
       << ", \"trace\": " << trace.to_json(64) << "}\n";
  std::cout << "wrote BENCH_recovery_observer.json\n";
  return 0;
}
