// spcache_masterd — the SP-Master as a standalone process.
//
// Binds a TcpTransport, hosts a MasterService on node 0 (metadata RPCs:
// REGISTER / LOOKUP / batch lookup / access reports, plus the deployment's
// StableStore checkpoint tier), and serves until SIGINT/SIGTERM or
// --max-seconds elapses. The first stdout line is
//
//   spcache_masterd listening on <host>:<port>
//
// so scripts that pass --port 0 (kernel-assigned) can parse the real port.
//
// With --workers the daemon also runs the deployment's health monitor: a
// monitor RpcNode (node 900) sends a kPing to every worker each heartbeat;
// a worker that misses K consecutive beats is declared dead and its pieces
// are re-created on the survivors by the RpcRecoveryCoordinator — whole
// files restored from the master's StableStore, lost pieces PUT over TCP
// stamped with a bumped epoch, the new layout published only after the
// bytes land. The exit line reports monitor.* counters so chaos scripts
// can assert that a kill was detected and repaired.
//
//   spcache_masterd [--host H] [--port P] [--workers LIST]
//                   [--heartbeat-ms B] [--max-seconds S] [--legacy-write-path]
//
//   --host H         bind address                [127.0.0.1]
//   --port P         listen port, 0 = ephemeral  [7070]
//   --workers LIST   comma-separated worker addresses; the i-th entry must
//                    be the daemon started with --node i+1. Enables the
//                    health monitor + RPC repair.
//   --heartbeat-ms B liveness probe interval     [100]
//   --max-seconds S  auto-exit after S seconds, 0 = run forever  [0]
//   --legacy-write-path  pre-batching write path (copy per send, one frame
//                        per syscall) — the bench baseline arm
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/health_monitor.h"
#include "obs/metrics.h"
#include "rpc/cache_service.h"
#include "rpc/rpc_recovery.h"
#include "rpc/tcp_transport.h"

using namespace spcache;
using namespace spcache::rpc;

namespace {

// Signal handlers may only touch lock-free sig_atomic_t state; everything
// else (logging, joins, socket teardown) happens on the main thread after
// the flag is observed.
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupted syscalls return EINTR and
                    // their call sites retry, so shutdown stays prompt
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  struct sigaction ign = {};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  sigaction(SIGPIPE, &ign, nullptr);
}

std::pair<std::string, std::uint16_t> parse_addr(const std::string& addr) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 == addr.size()) {
    std::cerr << "spcache_masterd: address '" << addr << "' is not HOST:PORT\n";
    std::exit(2);
  }
  return {addr.substr(0, colon),
          static_cast<std::uint16_t>(std::atoi(addr.c_str() + colon + 1))};
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  long max_seconds = 0;
  long heartbeat_ms = 100;
  bool legacy_write_path = false;
  std::vector<std::string> worker_addrs;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&] {
      if (i + 1 >= argc) {
        std::cerr << "spcache_masterd: missing value for " << flag << "\n";
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--host") {
      host = value();
    } else if (flag == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(value().c_str()));
    } else if (flag == "--max-seconds") {
      max_seconds = std::atol(value().c_str());
    } else if (flag == "--heartbeat-ms") {
      heartbeat_ms = std::atol(value().c_str());
    } else if (flag == "--workers") {
      const std::string list = value();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string addr =
            list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!addr.empty()) worker_addrs.push_back(addr);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (flag == "--legacy-write-path") {
      legacy_write_path = true;
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "spcache_masterd [--host H] [--port P] [--workers LIST] [--heartbeat-ms B] "
                   "[--max-seconds S] [--legacy-write-path]\n";
      return 0;
    } else {
      std::cerr << "spcache_masterd: unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (heartbeat_ms <= 0) heartbeat_ms = 100;

  install_signal_handlers();

  TcpTransportConfig config;
  config.batch_writes = !legacy_write_path;
  TcpTransport transport(config);
  const std::uint16_t bound = transport.listen(host, port);
  std::vector<NodeId> worker_nodes;
  for (std::size_t i = 0; i < worker_addrs.size(); ++i) {
    const auto [worker_host, worker_port] = parse_addr(worker_addrs[i]);
    const NodeId node = kFirstWorkerNode + static_cast<NodeId>(i);
    transport.add_peer(node, worker_host, worker_port);
    worker_nodes.push_back(node);
  }
  Bus bus(transport);
  obs::MetricsRegistry registry;
  bus.attach_observability(&registry);
  MasterService master(bus);

  // Liveness + repair, only with a worker address book to probe. The
  // monitor node issues the kPing probes and the repair PUTs; the
  // coordinator asks the HealthMonitor (via pointer, bound below) for its
  // cached verdicts when picking replacement workers.
  std::unique_ptr<RpcNode> monitor_node;
  std::unique_ptr<RpcRecoveryCoordinator> coordinator;
  std::unique_ptr<HealthMonitor> health;
  HealthMonitor* health_ptr = nullptr;
  std::atomic<std::uint64_t> ping_token{1};
  if (!worker_nodes.empty()) {
    monitor_node = std::make_unique<RpcNode>(bus, kMonitorNode, "monitor");
    monitor_node->start();
    coordinator = std::make_unique<RpcRecoveryCoordinator>(
        *monitor_node, master.master(), master.stable(), worker_nodes,
        [&health_ptr](std::uint32_t s) {
          return health_ptr == nullptr || health_ptr->server_healthy(s);
        });
    const auto probe_timeout =
        std::chrono::milliseconds(std::max<long>(50, heartbeat_ms / 2));
    // probe: a live worker echoes the token from its service thread — a
    // wedged or dead one times out and the beat counts as missed.
    auto probe = [&, probe_timeout](std::uint32_t s) {
      const std::uint64_t token = ping_token.fetch_add(1, std::memory_order_relaxed);
      BufferWriter w;
      w.u64(token);
      const Reply reply =
          monitor_node->call_sync(worker_nodes[s], kPing, w.take(), probe_timeout);
      if (!reply.ok()) return false;
      BufferReader r(reply.payload);
      return r.u64() == token;
    };
    auto repair = [&coordinator](std::uint32_t s) {
      return coordinator->repair_after_server_loss(s);
    };
    HealthMonitorConfig hm;
    hm.heartbeat_interval = std::chrono::milliseconds(heartbeat_ms);
    health = std::make_unique<HealthMonitor>(worker_nodes.size(), probe, repair, hm);
    health->attach_observability(&registry);
    health_ptr = health.get();
    health->start();

    std::cout << "spcache_masterd listening on " << host << ":" << bound << " monitoring "
              << worker_nodes.size() << " workers every " << heartbeat_ms << "ms" << std::endl;
  } else {
    std::cout << "spcache_masterd listening on " << host << ":" << bound << std::endl;
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(max_seconds);
  while (g_stop == 0) {
    if (max_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (health) health->stop();
  const HealthStats hs = health ? health->stats() : HealthStats{};
  const auto c = transport.counters();
  std::cout << "spcache_masterd exiting: transport.connects=" << c.connects
            << " transport.framing_errors=" << c.framing_errors
            << " transport.bytes_rx=" << c.bytes_rx << " transport.bytes_tx=" << c.bytes_tx
            << " transport.writev_calls=" << c.writev_calls
            << " transport.frames_sent=" << c.frames_sent
            << " transport.frames_per_writev=" << c.frames_per_writev
            << " monitor.beats=" << hs.beats << " monitor.deaths_declared=" << hs.deaths_declared
            << " monitor.repairs_completed=" << hs.repairs_completed
            << " monitor.repair_failures=" << hs.repair_failures
            << " monitor.pieces_recovered=" << hs.pieces_recovered << std::endl;
  return c.framing_errors == 0 ? 0 : 1;
}
