// spcache_masterd — the SP-Master as a standalone process.
//
// Binds a TcpTransport, hosts a MasterService on node 0, and serves
// metadata RPCs (REGISTER / LOOKUP / batch lookup / access reports) until
// SIGINT/SIGTERM or --max-seconds elapses. The first stdout line is
//
//   spcache_masterd listening on <host>:<port>
//
// so scripts that pass --port 0 (kernel-assigned) can parse the real port.
//
//   spcache_masterd [--host H] [--port P] [--max-seconds S]
//
//   --host H         bind address                [127.0.0.1]
//   --port P         listen port, 0 = ephemeral  [7070]
//   --max-seconds S  auto-exit after S seconds, 0 = run forever  [0]
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "rpc/cache_service.h"
#include "rpc/tcp_transport.h"

using namespace spcache;
using namespace spcache::rpc;

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  long max_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&] {
      if (i + 1 >= argc) {
        std::cerr << "spcache_masterd: missing value for " << flag << "\n";
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--host") {
      host = value();
    } else if (flag == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(value().c_str()));
    } else if (flag == "--max-seconds") {
      max_seconds = std::atol(value().c_str());
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "spcache_masterd [--host H] [--port P] [--max-seconds S]\n";
      return 0;
    } else {
      std::cerr << "spcache_masterd: unknown flag " << flag << "\n";
      return 2;
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  TcpTransport transport;
  const std::uint16_t bound = transport.listen(host, port);
  Bus bus(transport);
  obs::MetricsRegistry registry;
  bus.attach_observability(&registry);
  MasterService master(bus);

  std::cout << "spcache_masterd listening on " << host << ":" << bound << std::endl;

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(max_seconds);
  while (!g_stop.load()) {
    if (max_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const auto c = transport.counters();
  std::cout << "spcache_masterd exiting: transport.connects=" << c.connects
            << " transport.framing_errors=" << c.framing_errors
            << " transport.bytes_rx=" << c.bytes_rx << " transport.bytes_tx=" << c.bytes_tx
            << std::endl;
  return c.framing_errors == 0 ? 0 : 1;
}
