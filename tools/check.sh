#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrent
# substrate.
#
#   tools/check.sh          # release build + full ctest, then TSan suite
#   tools/check.sh --quick  # TSan pass only on the concurrency-heavy tests
#
# The TSan tree lives in build-tsan/ (the `tsan` preset in
# CMakePresets.json); the release tree in build/ (the `default` preset).
# An Address+UBSan tree is available via `cmake --preset asan` (build-asan/)
# for memory-error hunts; it is not part of this script's default run.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

# Concurrency-heavy tier: everything that exercises the sharded master,
# striped stores, thread pool, or the RPC bus — including the
# test_cluster_concurrency stress test.
TSAN_FILTER='test_cluster_|test_rpc_|test_common_thread_pool|test_integration|test_fault_injector'

# Chaos tier: the seeded fault-injection suite — degraded reads riding
# through injected failures, and the kill/revive storm whose repairs are
# driven by the HealthMonitor. Run under TSan so the injector's decision
# counters, the bus chaos hooks, and the monitor/repair pipeline are
# checked for races, not just for correctness.
CHAOS_FILTER='test_fault_injector|test_cluster_degraded_read|test_cluster_chaos'

# Observability tier: the `obs` ctest label — metrics-registry invariants
# under 16 concurrent writers, trace determinism/completeness, the
# ClusterObserver aggregation, and the Eq. 1 partition property suite
# (`ctest -L property` runs just the latter).

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> tier-1: release build + full test suite"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"

  echo "==> kernels: cross-ISA equivalence (-L kernels) once per SPCACHE_SIMD level"
  # The data-plane kernel tier: the simd equivalence suite, the CRC/GF(256)
  # unit tests, the RS codec suite, and the allocation-free read-path test,
  # each run with the dispatcher pinned to every tier this CPU supports
  # (unsupported levels clamp down, so the loop is safe on any host).
  for level in scalar ssse3 avx2; do
    SPCACHE_SIMD="$level" ctest --preset default -L kernels
  done

  echo "==> kernels: bench_micro smoke gates (RS encode throughput, bit-identity across tiers)"
  # Exits non-zero unless every supported tier produces bit-identical RS
  # output and (when AVX2 is present) single-core RS(8,11) encode clears
  # 4 GB/s at >=2x the scalar tier; timing is best-of-5 to shed scheduler
  # noise on shared hosts.
  (cd build/bench && ./bench_micro --smoke)

  echo "==> observability: registry/trace/observer invariants (-L obs)"
  ctest --preset default -L obs

  echo "==> metadata-light smoke: cached reads must beat the always-LOOKUP baseline"
  # Exits non-zero unless >=90% of steady-state reads skip the master and
  # throughput ends up above the baseline; writes BENCH_metadata.json.
  (cd build/bench && ./bench_metadata_offload --smoke)

  echo "==> repartition smoke: delta must cut >=30% of the rewrite executor's bytes"
  # Shrunken Figs. 16-18 sweep; fig16 exits non-zero unless the delta
  # executor moves <=70% of the rewrite executor's bytes on the
  # online-adjust workload; writes BENCH_repartition.json.
  (cd build/bench && ./bench_fig16_repartition_time --smoke)
  (cd build/bench && ./bench_fig17_repartition_fraction --smoke >/dev/null)
  (cd build/bench && ./bench_fig18_repartition_balance --smoke >/dev/null)

  echo "==> scenario: adversarial suite (-L scenario) + adaptive-vs-frozen smoke gates"
  # The adversarial tier: replay determinism, the closed-loop alpha
  # controller property tests, and the correlated-failure degraded-read
  # invariants. Then bench_scenarios --smoke replays every scripted
  # scenario in both arms and exits non-zero unless per-phase eta and p99
  # stay under its gates with the adaptive controller AND the adaptive
  # arm beats frozen alpha on worst-phase eta; writes BENCH_scenarios.json.
  ctest --preset default -L scenario
  (cd build/bench && timeout -k 5 120 ./bench_scenarios --smoke)

  echo "==> transport: multi-process TCP cluster (1 master + 3 servers + CLI workload)"
  # Boots real daemons on ephemeral localhost ports, drives the write+read
  # workload through spcache_cli --rpc (bit-exact verification inside), and
  # fails on any nonzero exit or a single framing error on the client side.
  # Every daemon runs under a hard `timeout` (belt) on top of its own
  # --max-seconds (suspenders), so a wedged process can never outlive the
  # stage or leak into the next check run.
  TRANSPORT_DIR="$(mktemp -d)"
  TRANSPORT_PIDS=()
  cleanup_transport() {
    for pid in "${TRANSPORT_PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    for pid in "${TRANSPORT_PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$TRANSPORT_DIR"
  }
  trap cleanup_transport EXIT
  timeout -k 5 180 ./build/tools/spcache_masterd --port 0 --max-seconds 170 \
      > "$TRANSPORT_DIR/master.log" 2>&1 &
  TRANSPORT_PIDS+=($!)
  for n in 1 2 3; do
    timeout -k 5 180 ./build/tools/spcache_serverd --node "$n" --port 0 --max-seconds 170 \
        > "$TRANSPORT_DIR/server$n.log" 2>&1 &
    TRANSPORT_PIDS+=($!)
  done
  # Each daemon prints "... listening on HOST:PORT" once bound (--port 0 =
  # kernel-assigned, so parallel check runs cannot collide).
  for _ in $(seq 50); do
    [[ -s "$TRANSPORT_DIR/master.log" && -s "$TRANSPORT_DIR/server3.log" ]] && break
    sleep 0.1
  done
  MASTER_ADDR="$(grep -oE '[0-9.]+:[0-9]+' "$TRANSPORT_DIR/master.log" | head -1)"
  WORKER_ADDRS="$(for n in 1 2 3; do
    grep -oE '[0-9.]+:[0-9]+' "$TRANSPORT_DIR/server$n.log" | head -1
  done | paste -sd,)"
  [[ -n "$MASTER_ADDR" && -n "$WORKER_ADDRS" ]] || {
    echo "transport stage: daemons failed to report their ports" >&2
    cat "$TRANSPORT_DIR"/*.log >&2
    exit 1
  }
  timeout -k 5 120 ./build/tools/spcache_cli --rpc --master "$MASTER_ADDR" \
      --workers "$WORKER_ADDRS" --files 24 --requests 48 --seed 7 \
      | tee "$TRANSPORT_DIR/cli.log"
  grep -q 'mismatches=0 ' "$TRANSPORT_DIR/cli.log"
  grep -q 'transport\.framing_errors=0 ' "$TRANSPORT_DIR/cli.log"
  # Same daemons, adversarial key sequence: the flash-crowd script's
  # phase catalogs shape the reads (hot key flips mid-run), every read
  # still bit-exact over the sockets.
  timeout -k 5 120 ./build/tools/spcache_cli --rpc --master "$MASTER_ADDR" \
      --workers "$WORKER_ADDRS" --scenario flash --requests 60 --seed 7 \
      | tee "$TRANSPORT_DIR/cli_scenario.log"
  grep -q 'mismatches=0 ' "$TRANSPORT_DIR/cli_scenario.log"
  grep -q 'scenario=flash phase=decay' "$TRANSPORT_DIR/cli_scenario.log"
  cleanup_transport
  trap - EXIT

  echo "==> chaos-tcp: seeded socket faults, then a worker killed mid-workload"
  # The hardened-deployment acceptance scenario. Phase 1 writes + reads the
  # dataset through seeded socket chaos (partial writes splitting frames
  # across segments, loop-thread delays) — bit-exact or the stage fails.
  # Phase 2 re-reads the same dataset (regenerated from the seed via
  # --read-only) while one spcache_serverd is kill -9'd mid-run: the
  # masterd's health monitor must detect the death over TCP (missed kPing
  # beats), restore the lost pieces from its stable tier onto the survivor
  # via kPutBlock, and publish the repaired layout — every read still
  # bit-exact, and the master's exit line must report a completed repair.
  CHAOS_DIR="$(mktemp -d)"
  CHAOS_PIDS=()
  cleanup_chaos() {
    # The tracked PIDs are `timeout` wrappers: SIGKILLing one would orphan
    # its daemon, so sweep each wrapper's children first.
    for pid in "${CHAOS_PIDS[@]:-}"; do pkill -9 -P "$pid" 2>/dev/null || true; done
    for pid in "${CHAOS_PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    for pid in "${CHAOS_PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$CHAOS_DIR"
  }
  trap cleanup_chaos EXIT
  SERVER_PIDS=()
  for n in 1 2; do
    timeout -k 5 180 ./build/tools/spcache_serverd --node "$n" --port 0 --max-seconds 170 \
        > "$CHAOS_DIR/server$n.log" 2>&1 &
    SERVER_PIDS+=($!)
    CHAOS_PIDS+=($!)
  done
  for _ in $(seq 50); do
    [[ -s "$CHAOS_DIR/server1.log" && -s "$CHAOS_DIR/server2.log" ]] && break
    sleep 0.1
  done
  CHAOS_WORKERS="$(for n in 1 2; do
    grep -oE '[0-9.]+:[0-9]+' "$CHAOS_DIR/server$n.log" | head -1
  done | paste -sd,)"
  timeout -k 5 180 ./build/tools/spcache_masterd --port 0 --max-seconds 170 \
      --workers "$CHAOS_WORKERS" --heartbeat-ms 50 \
      > "$CHAOS_DIR/master.log" 2>&1 &
  MASTERD_PID=$!
  CHAOS_PIDS+=($MASTERD_PID)
  for _ in $(seq 50); do
    [[ -s "$CHAOS_DIR/master.log" ]] && break
    sleep 0.1
  done
  CHAOS_MASTER="$(grep -oE '[0-9.]+:[0-9]+' "$CHAOS_DIR/master.log" | head -1)"
  [[ -n "$CHAOS_MASTER" && -n "$CHAOS_WORKERS" ]] || {
    echo "chaos-tcp stage: daemons failed to report their ports" >&2
    cat "$CHAOS_DIR"/*.log >&2
    exit 1
  }
  # Phase 1: the write+read workload through seeded socket faults.
  timeout -k 5 120 ./build/tools/spcache_cli --rpc --master "$CHAOS_MASTER" \
      --workers "$CHAOS_WORKERS" --files 16 --requests 32 --seed 11 \
      --chaos-seed 5 --chaos-partial 0.05 --chaos-delay 0.05 \
      | tee "$CHAOS_DIR/cli1.log"
  grep -q 'mismatches=0 ' "$CHAOS_DIR/cli1.log"
  grep -qE 'chaos\.partial_writes=[1-9]' "$CHAOS_DIR/cli1.log"
  # Phase 2: read-only re-run in the background; kill -9 worker 2 under it.
  timeout -k 5 120 ./build/tools/spcache_cli --rpc --master "$CHAOS_MASTER" \
      --workers "$CHAOS_WORKERS" --files 16 --requests 2000 --seed 11 \
      --read-only > "$CHAOS_DIR/cli2.log" 2>&1 &
  CLI2_PID=$!
  CHAOS_PIDS+=($CLI2_PID)
  sleep 0.4
  # kill -9 the serverd itself, not its `timeout` wrapper — a SIGKILLed
  # wrapper would orphan the daemon alive.
  SERVERD2_PID="$(pgrep -P "${SERVER_PIDS[1]}" | head -1)"
  kill -9 "${SERVERD2_PID:-${SERVER_PIDS[1]}}" 2>/dev/null || true
  wait "$CLI2_PID"
  grep -q 'mismatches=0 ' "$CHAOS_DIR/cli2.log"
  # The master must have detected the kill and completed an RPC repair.
  kill -TERM "$MASTERD_PID" 2>/dev/null || true
  wait "$MASTERD_PID" 2>/dev/null || true
  grep -qE 'monitor\.deaths_declared=[1-9]' "$CHAOS_DIR/master.log" || {
    echo "chaos-tcp stage: master never declared the killed worker dead" >&2
    cat "$CHAOS_DIR/master.log" >&2
    exit 1
  }
  grep -qE 'monitor\.repairs_completed=[1-9]' "$CHAOS_DIR/master.log" || {
    echo "chaos-tcp stage: master never completed a repair" >&2
    cat "$CHAOS_DIR/master.log" >&2
    exit 1
  }
  cleanup_chaos
  trap - EXIT
  # The slow-reader/backpressure unit check in the release tree (the whole
  # test_rpc_tcp suite runs again under TSan below).
  timeout -k 5 120 ./build/tests/test_rpc_tcp \
      --gtest_filter='TcpTransport.SlowReaderHitsWatermarkAndFailsFast'

  echo "==> tcp-scale: syscall-lean write path vs the pre-change baseline"
  # bench_tcp_scale boots both arms' daemon clusters (batched and
  # --legacy-write-path), interleaves timed multi-client read reps, then
  # runs an untimed pass with partial-write chaos armed on both sides. The
  # binary itself exits non-zero unless every read (chaos included) was
  # bit-exact, no side saw a framing error, and the batched servers
  # actually gathered (frames_per_writev > 1); the greps below pin those
  # gates in the log so a silently weakened binary can't pass the stage.
  TCP_SCALE_LOG="$(mktemp)"
  timeout -k 5 300 ./build/bench/bench_tcp_scale --smoke --bindir ./build/tools \
      | tee "$TCP_SCALE_LOG"
  grep -q 'gates mismatches=0 framing_errors=0' "$TCP_SCALE_LOG"
  grep -qE 'batched_frames_per_writev=([2-9]|1[0-9.]+[0-9])' "$TCP_SCALE_LOG"
  grep -q 'result=PASS' "$TCP_SCALE_LOG"
  rm -f "$TCP_SCALE_LOG"
fi

echo "==> ThreadSanitizer: configure + build"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "==> ThreadSanitizer: tier-1 suite (concurrency tier: ${TSAN_FILTER})"
ctest --preset tsan -R "${TSAN_FILTER}"

echo "==> ThreadSanitizer: chaos stage (${CHAOS_FILTER})"
ctest --preset tsan -R "${CHAOS_FILTER}"

echo "==> ThreadSanitizer: kernels stage (-L kernels, scalar tier)"
# Pin the dispatcher to the scalar tier: TSan doesn't understand the vector
# kernels' byte-level parallelism any better, and the scalar loops are the
# ones every tier falls back to for heads/tails, so instrumenting them is
# the coverage that matters. (The allocation-strictness assert in
# test_cluster_read_alloc self-relaxes under sanitizer builds.)
SPCACHE_SIMD=scalar ctest --preset tsan -L kernels

echo "==> ThreadSanitizer: observability stage (-L obs)"
ctest --preset tsan -L obs

echo "==> ThreadSanitizer: scenario stage (-L scenario)"
ctest --preset tsan -L scenario

echo "==> ThreadSanitizer: repartition smoke (staging/cutover under the race detector)"
(cd build-tsan/bench && ./bench_fig16_repartition_time --smoke)

echo "==> all checks passed"
