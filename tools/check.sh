#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrent
# substrate.
#
#   tools/check.sh          # release build + full ctest, then TSan suite
#   tools/check.sh --quick  # TSan pass only on the concurrency-heavy tests
#
# The TSan tree lives in build-tsan/ (the `tsan` preset in
# CMakePresets.json); the release tree in build/ (the `default` preset).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

# Concurrency-heavy tier: everything that exercises the sharded master,
# striped stores, thread pool, or the RPC bus — including the
# test_cluster_concurrency stress test.
TSAN_FILTER='test_cluster_|test_rpc_|test_common_thread_pool|test_integration'

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> tier-1: release build + full test suite"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"
fi

echo "==> ThreadSanitizer: configure + build"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "==> ThreadSanitizer: tier-1 suite (concurrency tier: ${TSAN_FILTER})"
ctest --preset tsan -R "${TSAN_FILTER}"

echo "==> all checks passed"
