#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrent
# substrate.
#
#   tools/check.sh          # release build + full ctest, then TSan suite
#   tools/check.sh --quick  # TSan pass only on the concurrency-heavy tests
#
# The TSan tree lives in build-tsan/ (the `tsan` preset in
# CMakePresets.json); the release tree in build/ (the `default` preset).
# An Address+UBSan tree is available via `cmake --preset asan` (build-asan/)
# for memory-error hunts; it is not part of this script's default run.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

# Concurrency-heavy tier: everything that exercises the sharded master,
# striped stores, thread pool, or the RPC bus — including the
# test_cluster_concurrency stress test.
TSAN_FILTER='test_cluster_|test_rpc_|test_common_thread_pool|test_integration|test_fault_injector'

# Chaos tier: the seeded fault-injection suite — degraded reads riding
# through injected failures, and the kill/revive storm whose repairs are
# driven by the HealthMonitor. Run under TSan so the injector's decision
# counters, the bus chaos hooks, and the monitor/repair pipeline are
# checked for races, not just for correctness.
CHAOS_FILTER='test_fault_injector|test_cluster_degraded_read|test_cluster_chaos'

# Observability tier: the `obs` ctest label — metrics-registry invariants
# under 16 concurrent writers, trace determinism/completeness, the
# ClusterObserver aggregation, and the Eq. 1 partition property suite
# (`ctest -L property` runs just the latter).

if [[ "$QUICK" -eq 0 ]]; then
  echo "==> tier-1: release build + full test suite"
  cmake --preset default
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"

  echo "==> observability: registry/trace/observer invariants (-L obs)"
  ctest --preset default -L obs

  echo "==> metadata-light smoke: cached reads must beat the always-LOOKUP baseline"
  # Exits non-zero unless >=90% of steady-state reads skip the master and
  # throughput ends up above the baseline; writes BENCH_metadata.json.
  (cd build/bench && ./bench_metadata_offload --smoke)

  echo "==> repartition smoke: delta must cut >=30% of the rewrite executor's bytes"
  # Shrunken Figs. 16-18 sweep; fig16 exits non-zero unless the delta
  # executor moves <=70% of the rewrite executor's bytes on the
  # online-adjust workload; writes BENCH_repartition.json.
  (cd build/bench && ./bench_fig16_repartition_time --smoke)
  (cd build/bench && ./bench_fig17_repartition_fraction --smoke >/dev/null)
  (cd build/bench && ./bench_fig18_repartition_balance --smoke >/dev/null)

  echo "==> transport: multi-process TCP cluster (1 master + 3 servers + CLI workload)"
  # Boots real daemons on ephemeral localhost ports, drives the write+read
  # workload through spcache_cli --rpc (bit-exact verification inside), and
  # fails on any nonzero exit or a single framing error on the client side.
  TRANSPORT_DIR="$(mktemp -d)"
  TRANSPORT_PIDS=()
  cleanup_transport() {
    for pid in "${TRANSPORT_PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    for pid in "${TRANSPORT_PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$TRANSPORT_DIR"
  }
  trap cleanup_transport EXIT
  ./build/tools/spcache_masterd --port 0 --max-seconds 180 \
      > "$TRANSPORT_DIR/master.log" 2>&1 &
  TRANSPORT_PIDS+=($!)
  for n in 1 2 3; do
    ./build/tools/spcache_serverd --node "$n" --port 0 --max-seconds 180 \
        > "$TRANSPORT_DIR/server$n.log" 2>&1 &
    TRANSPORT_PIDS+=($!)
  done
  # Each daemon prints "... listening on HOST:PORT" once bound (--port 0 =
  # kernel-assigned, so parallel check runs cannot collide).
  for _ in $(seq 50); do
    [[ -s "$TRANSPORT_DIR/master.log" && -s "$TRANSPORT_DIR/server3.log" ]] && break
    sleep 0.1
  done
  MASTER_ADDR="$(grep -oE '[0-9.]+:[0-9]+$' "$TRANSPORT_DIR/master.log" | head -1)"
  WORKER_ADDRS="$(for n in 1 2 3; do
    grep -oE '[0-9.]+:[0-9]+$' "$TRANSPORT_DIR/server$n.log" | head -1
  done | paste -sd,)"
  [[ -n "$MASTER_ADDR" && -n "$WORKER_ADDRS" ]] || {
    echo "transport stage: daemons failed to report their ports" >&2
    cat "$TRANSPORT_DIR"/*.log >&2
    exit 1
  }
  ./build/tools/spcache_cli --rpc --master "$MASTER_ADDR" --workers "$WORKER_ADDRS" \
      --files 24 --requests 48 --seed 7 | tee "$TRANSPORT_DIR/cli.log"
  grep -q 'mismatches=0 ' "$TRANSPORT_DIR/cli.log"
  grep -q 'transport\.framing_errors=0 ' "$TRANSPORT_DIR/cli.log"
  cleanup_transport
  trap - EXIT
fi

echo "==> ThreadSanitizer: configure + build"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "==> ThreadSanitizer: tier-1 suite (concurrency tier: ${TSAN_FILTER})"
ctest --preset tsan -R "${TSAN_FILTER}"

echo "==> ThreadSanitizer: chaos stage (${CHAOS_FILTER})"
ctest --preset tsan -R "${CHAOS_FILTER}"

echo "==> ThreadSanitizer: observability stage (-L obs)"
ctest --preset tsan -L obs

echo "==> ThreadSanitizer: repartition smoke (staging/cutover under the race detector)"
(cd build-tsan/bench && ./bench_fig16_repartition_time --smoke)

echo "==> all checks passed"
