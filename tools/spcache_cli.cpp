// spcache_cli — run a custom cluster-caching experiment from the command
// line: pick a scheme, shape the workload, and get latency / balance /
// memory numbers without writing any code.
//
//   spcache_cli --scheme sp --files 500 --size-mb 100 --zipf 1.05 \
//               --rate 18 --servers 30 --requests 9000 --stragglers 0.05
//
// Options (defaults in brackets):
//   --scheme sp|ec|replication|chunk|simple|stock|hash   [sp]
//   --files N          catalog size                      [500]
//   --size-mb S        file size in MB                   [100]
//   --zipf Z           popularity exponent               [1.05]
//   --rate R           aggregate request rate, req/s     [18]
//   --servers N        cache servers                     [30]
//   --requests N       simulated requests                [9000]
//   --bandwidth-gbps B per-server link speed             [1.0]
//   --stragglers P     per-fetch straggler probability   [0]
//   --chunk-mb C       chunk size for --scheme chunk     [8]
//   --k K --n N        code geometry for --scheme ec     [10 14]
//   --replicas R       copies for --scheme replication   [4]
//   --simple-k K       partitions for --scheme simple    [9]
//   --alpha A          fix SP-Cache's scale factor (skip Algorithm 1)
//   --weighted         bandwidth-weighted SP placement
//   --hetero F         fraction of servers at half bandwidth [0]
//   --seed S           master seed                       [1]
//   --catalog F        replay a catalog CSV (overrides --files/--size-mb/
//                      --zipf/--rate; see workload/trace_io.h)
//   --arrivals F       replay an arrivals CSV (overrides --requests)
//   --csv              machine-readable output
//
// Multi-process mode — drive a real TCP cluster instead of the simulator:
//
//   spcache_cli --rpc --master 127.0.0.1:7070 \
//               --workers 127.0.0.1:7171,127.0.0.1:7172,127.0.0.1:7173 \
//               --files 24 --size-mb 0.25 --requests 48
//
//   --rpc              talk to spcache_masterd / spcache_serverd daemons
//   --master H:P       the master daemon's address
//   --workers LIST     comma-separated worker daemon addresses; the i-th
//                      entry must be the daemon started with --node i+1
//   --files/--size-mb/--zipf/--seed shape the dataset ([--size-mb 0.25]
//                      in this mode); --requests is the read count
//                      [2 x files]
//   --read-only        skip the write pass: regenerate the expected bytes
//                      from --seed and only read (the dataset must have
//                      been written by an earlier run with the same
//                      --files/--size-mb/--seed)
//   --scenario NAME    shape the read sequence from an adversarial
//                      scenario script (drift|flash|multi-tenant; see
//                      src/scenario/script.h) instead of round-robin:
//                      each phase samples reads from its phase catalog's
//                      rates and prints a per-phase line. The dataset is
//                      sized by the script (--files/--size-mb ignored);
//                      --requests overrides the per-phase read count.
//                      correlated-failure needs server kills, which the
//                      CLI can't do to live daemons — use bench_scenarios
//                      for that one.
//   --rpc-timeout-ms T per-RPC timeout / propagated deadline  [1000]
//   --chaos-seed S     arm seeded socket chaos on this client's transport
//   --chaos-partial P  per-flush partial-write probability    [0]
//   --chaos-reset P    per-flush connection-reset probability [0]
//   --chaos-delay P    per-flush loop-stall probability       [0]
//
// Writes every file through PUT + REGISTER (checkpointing each to the
// master's stable tier), reads them back over the sockets, and verifies
// each file bit-exact (whole-file CRC plus byte compare). Exits nonzero on
// any mismatch or if transport.framing_errors is nonzero; the final stdout
// line reports the transport counters (including backpressure/circuit
// state) and, with chaos armed, the fired-fault counts.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/ec_cache.h"
#include "fault/fault_injector.h"
#include "core/fixed_chunking.h"
#include "core/hash_placement.h"
#include "core/selective_replication.h"
#include "core/simple_partition.h"
#include "core/sp_cache.h"
#include "obs/metrics.h"
#include "rpc/cache_service.h"
#include "rpc/tcp_transport.h"
#include "scenario/script.h"
#include "sim/simulation.h"
#include "workload/arrivals.h"
#include "workload/trace_io.h"

using namespace spcache;

namespace {

struct Options {
  std::string scheme = "sp";
  std::size_t files = 500;
  double size_mb = 100.0;
  double zipf = 1.05;
  double rate = 18.0;
  std::size_t servers = 30;
  std::size_t requests = 9000;
  double bandwidth_gbps = 1.0;
  double stragglers = 0.0;
  double chunk_mb = 8.0;
  std::size_t k = 10, n = 14;
  std::size_t replicas = 4;
  std::size_t simple_k = 9;
  double alpha = 0.0;  // 0 = run Algorithm 1
  bool weighted = false;
  double hetero = 0.0;
  std::string catalog_file;
  std::string arrivals_file;
  std::uint64_t seed = 1;
  bool csv = false;

  // Multi-process mode (--rpc): real daemons instead of the simulator.
  bool rpc = false;
  std::string master_addr;
  std::vector<std::string> worker_addrs;
  bool size_set = false;      // was --size-mb given explicitly?
  bool requests_set = false;  // was --requests given explicitly?
  bool read_only = false;
  std::string scenario;  // --rpc only: adversarial script name
  std::size_t rpc_timeout_ms = 1000;
  // Seeded socket chaos (armed when any probability is nonzero).
  std::uint64_t chaos_seed = 1;
  double chaos_partial = 0.0;
  double chaos_reset = 0.0;
  double chaos_delay = 0.0;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "spcache_cli: " << message << "\nSee the header of tools/spcache_cli.cpp.\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int i) {
    if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
    return std::string(argv[i + 1]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto num = [&](double& out) { out = std::atof(need_value(i).c_str()); ++i; };
    auto unum = [&](std::size_t& out) {
      out = static_cast<std::size_t>(std::atoll(need_value(i).c_str()));
      ++i;
    };
    if (flag == "--scheme") {
      o.scheme = need_value(i);
      ++i;
    } else if (flag == "--files") {
      unum(o.files);
    } else if (flag == "--size-mb") {
      num(o.size_mb);
      o.size_set = true;
    } else if (flag == "--zipf") {
      num(o.zipf);
    } else if (flag == "--rate") {
      num(o.rate);
    } else if (flag == "--servers") {
      unum(o.servers);
    } else if (flag == "--requests") {
      unum(o.requests);
      o.requests_set = true;
    } else if (flag == "--bandwidth-gbps") {
      num(o.bandwidth_gbps);
    } else if (flag == "--stragglers") {
      num(o.stragglers);
    } else if (flag == "--chunk-mb") {
      num(o.chunk_mb);
    } else if (flag == "--k") {
      unum(o.k);
    } else if (flag == "--n") {
      unum(o.n);
    } else if (flag == "--replicas") {
      unum(o.replicas);
    } else if (flag == "--simple-k") {
      unum(o.simple_k);
    } else if (flag == "--alpha") {
      num(o.alpha);
    } else if (flag == "--weighted") {
      o.weighted = true;
    } else if (flag == "--hetero") {
      num(o.hetero);
    } else if (flag == "--seed") {
      std::size_t s = 0;
      unum(s);
      o.seed = s;
    } else if (flag == "--catalog") {
      o.catalog_file = need_value(i);
      ++i;
    } else if (flag == "--arrivals") {
      o.arrivals_file = need_value(i);
      ++i;
    } else if (flag == "--csv") {
      o.csv = true;
    } else if (flag == "--rpc") {
      o.rpc = true;
    } else if (flag == "--read-only") {
      o.read_only = true;
    } else if (flag == "--scenario") {
      o.scenario = need_value(i);
      ++i;
    } else if (flag == "--rpc-timeout-ms") {
      unum(o.rpc_timeout_ms);
    } else if (flag == "--chaos-seed") {
      std::size_t s = 0;
      unum(s);
      o.chaos_seed = s;
    } else if (flag == "--chaos-partial") {
      num(o.chaos_partial);
    } else if (flag == "--chaos-reset") {
      num(o.chaos_reset);
    } else if (flag == "--chaos-delay") {
      num(o.chaos_delay);
    } else if (flag == "--master") {
      o.master_addr = need_value(i);
      ++i;
    } else if (flag == "--workers") {
      std::string list = need_value(i);
      ++i;
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string addr =
            list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!addr.empty()) o.worker_addrs.push_back(addr);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "See the header comment of tools/spcache_cli.cpp for options.\n";
      std::exit(0);
    } else {
      usage_error("unknown flag " + flag);
    }
  }
  if (o.files == 0 || o.servers == 0 || o.requests == 0) usage_error("zero-sized experiment");
  if (o.rpc) {
    if (o.master_addr.empty()) usage_error("--rpc needs --master HOST:PORT");
    if (o.worker_addrs.empty()) usage_error("--rpc needs --workers HOST:PORT[,HOST:PORT...]");
  }
  if (!o.scenario.empty() && !o.rpc) usage_error("--scenario requires --rpc");
  return o;
}

std::pair<std::string, std::uint16_t> parse_addr(const std::string& addr) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 == addr.size()) {
    usage_error("address '" + addr + "' is not HOST:PORT");
  }
  return {addr.substr(0, colon),
          static_cast<std::uint16_t>(std::atoi(addr.c_str() + colon + 1))};
}

// --scenario: resolve the named adversarial script, sized for this worker
// count. The correlated-failure script needs to kill servers, which the
// CLI cannot do to out-of-process daemons.
scenario::ScenarioScript resolve_scenario(const std::string& name, std::size_t n_workers) {
  for (auto& script : scenario::all_scenarios(n_workers)) {
    if (script.name != name) continue;
    if (script.phases.front().kill_hot_holders ||
        std::any_of(script.phases.begin(), script.phases.end(),
                    [](const scenario::PhaseSpec& p) { return p.kill_hot_holders; })) {
      usage_error("--scenario " + name +
                  " scripts server kills; drive it in-process via bench_scenarios instead");
    }
    return script;
  }
  usage_error("unknown --scenario '" + name + "' (drift|flash|multi-tenant)");
}

// --rpc: write a placed dataset into a live daemon cluster over TCP, read
// it all back, verify bit-exact. Returns the process exit code.
int run_rpc(const Options& o) {
  using namespace spcache::rpc;

  TcpTransport transport;
  // Seeded socket chaos on this client's half of every connection. The
  // schedule is a pure function of (seed, site, decision index), so a
  // failing run replays from the command line alone.
  const bool chaos = o.chaos_partial > 0.0 || o.chaos_reset > 0.0 || o.chaos_delay > 0.0;
  fault::FaultConfig chaos_cfg;
  chaos_cfg.sock_partial_write_p = o.chaos_partial;
  chaos_cfg.sock_reset_p = o.chaos_reset;
  chaos_cfg.sock_delay_p = o.chaos_delay;
  fault::FaultInjector injector(o.chaos_seed, chaos_cfg);
  if (chaos) transport.set_fault_injector(&injector);
  transport.start();
  const auto [master_host, master_port] = parse_addr(o.master_addr);
  transport.add_peer(kMasterNode, master_host, master_port);
  std::vector<NodeId> worker_nodes;
  for (std::size_t i = 0; i < o.worker_addrs.size(); ++i) {
    const auto [host, port] = parse_addr(o.worker_addrs[i]);
    const NodeId node = kFirstWorkerNode + static_cast<NodeId>(i);
    transport.add_peer(node, host, port);
    worker_nodes.push_back(node);
  }

  Bus bus(transport);
  obs::MetricsRegistry registry;
  bus.attach_observability(&registry);
  RpcSpClient client(bus, kFirstClientNode, kMasterNode, worker_nodes,
                     fault::RetryPolicy{},
                     std::chrono::milliseconds(o.rpc_timeout_ms));
  client.attach_observability(&registry);

  // Algorithm 1 decides each file's partition across the real workers.
  // Whole 100 MB defaults make no sense against localhost daemons; without
  // an explicit --size-mb the dataset drops to 0.25 MB files. With
  // --scenario, the script's phase-0 catalog is the layout baseline (the
  // same "yesterday's re-balance" the in-process driver starts from).
  const bool scenario_mode = !o.scenario.empty();
  scenario::ScenarioScript script;
  if (scenario_mode) script = resolve_scenario(o.scenario, o.worker_addrs.size());
  const std::size_t n_files = scenario_mode ? script.n_files : o.files;
  const double size_mb = o.size_set ? o.size_mb : 0.25;
  const auto catalog =
      scenario_mode ? scenario::phase_catalog(script, script.phases.front())
                    : make_uniform_catalog(o.files, megabytes(size_mb), o.zipf, o.rate);
  SpCacheScheme scheme;
  Rng rng(o.seed);
  scheme.place(catalog, std::vector<Bandwidth>(worker_nodes.size(), gbps(o.bandwidth_gbps)),
               rng);

  std::vector<std::vector<std::uint8_t>> originals(n_files);
  for (FileId f = 0; f < n_files; ++f) {
    const Bytes size = catalog.file(f).size;
    originals[f].resize(size);
    // Deterministic per-file content so a re-run (or another process) can
    // regenerate the expected bytes from --seed alone.
    std::uint64_t x = o.seed * 0x9E3779B97F4A7C15ull + f + 1;
    for (std::size_t i = 0; i < size; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      originals[f][i] = static_cast<std::uint8_t>(x);
    }
    if (!o.read_only) client.write(f, originals[f], scheme.placement(f).servers);
  }
  if (o.read_only) {
    std::cout << "read-only: expecting " << n_files << " files ("
              << static_cast<double>(catalog.total_bytes()) / static_cast<double>(kMB)
              << " MB) written by an earlier run with seed " << o.seed << "\n";
  } else {
    std::cout << "wrote " << n_files << " files ("
              << static_cast<double>(catalog.total_bytes()) / static_cast<double>(kMB)
              << " MB) across " << worker_nodes.size() << " workers\n";
  }

  // Read pass. Default: every file at least once, wrapping until the
  // request budget is spent. With --scenario, each phase instead samples
  // reads from its phase catalog's rates (the popularity shape the
  // in-process driver replays), so the daemons see the same adversarial
  // sequence of hot keys. read() CRC-verifies; the byte compare makes
  // bit-exactness explicit.
  std::size_t reads = 0;
  std::size_t mismatches = 0;
  const auto verified_read = [&](FileId f) {
    ++reads;
    try {
      if (client.read(f) != originals[f]) {
        std::cerr << "spcache_cli: file " << f << " read back different bytes\n";
        ++mismatches;
      }
    } catch (const std::exception& e) {
      std::cerr << "spcache_cli: read of file " << f << " failed: " << e.what() << "\n";
      ++mismatches;
    }
  };
  if (scenario_mode) {
    for (std::size_t p = 0; p < script.phases.size(); ++p) {
      const auto& spec = script.phases[p];
      const auto phase_cat = scenario::phase_catalog(script, spec);
      std::vector<double> cumulative(phase_cat.size(), 0.0);
      double total = 0.0;
      for (FileId f = 0; f < phase_cat.size(); ++f) {
        total += phase_cat.file(f).request_rate;
        cumulative[f] = total;
      }
      // Same per-phase stream derivation as the in-process driver: the
      // read sequence is a pure function of the script seed.
      Rng phase_rng(script.seed ^ (0x9E3779B97F4A7C15ull * (p + 1)));
      const std::size_t phase_reads = o.requests_set ? o.requests : spec.requests;
      const std::size_t mismatches_before = mismatches;
      for (std::size_t r = 0; r < phase_reads; ++r) {
        const double u = phase_rng.uniform() * total;
        const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
        verified_read(static_cast<FileId>(it == cumulative.end()
                                              ? phase_cat.size() - 1
                                              : static_cast<std::size_t>(
                                                    it - cumulative.begin())));
      }
      std::cout << "scenario=" << script.name << " phase=" << spec.name
                << " reads=" << phase_reads
                << " hot_file=" << scenario::phase_hot_file(script, spec)
                << " mismatches=" << (mismatches - mismatches_before) << "\n";
    }
  } else {
    const std::size_t budget = o.requests_set ? o.requests : 2 * n_files;
    for (std::size_t r = 0; r < budget; ++r) {
      verified_read(static_cast<FileId>(r % n_files));
    }
  }
  client.flush_access_reports();

  const auto c = transport.counters();
  std::cout << "reads=" << reads << " mismatches=" << mismatches
            << " transport.connects=" << c.connects
            << " transport.reconnects=" << c.reconnects
            << " transport.framing_errors=" << c.framing_errors
            << " transport.bytes_tx=" << c.bytes_tx << " transport.bytes_rx=" << c.bytes_rx
            << " transport.frames_dropped=" << c.frames_dropped
            << " transport.backpressure_events=" << c.backpressure_events
            << " transport.backpressure_rejects=" << c.backpressure_rejects
            << " transport.backpressure_drops=" << c.backpressure_drops
            << " transport.wqueue_peak=" << c.wqueue_peak
            << " transport.circuit_opens=" << c.circuit_opens
            << " transport.writev_calls=" << c.writev_calls
            << " transport.frames_per_writev=" << c.frames_per_writev;
  if (chaos) {
    const auto fs = injector.stats();
    std::cout << " chaos.partial_writes=" << fs.sock_partial_writes
              << " chaos.resets=" << fs.sock_resets << " chaos.delays=" << fs.sock_delays;
  }
  std::cout << std::endl;
  if (mismatches > 0 || c.framing_errors > 0) return 1;
  return 0;
}

std::unique_ptr<CachingScheme> make_scheme(const Options& o) {
  if (o.scheme == "sp") {
    SpCacheConfig cfg;
    if (o.alpha > 0.0) cfg.fixed_alpha = o.alpha;
    cfg.bandwidth_weighted_placement = o.weighted;
    return std::make_unique<SpCacheScheme>(cfg);
  }
  if (o.scheme == "ec") {
    EcCacheConfig cfg;
    cfg.k = o.k;
    cfg.n = o.n;
    return std::make_unique<EcCacheScheme>(cfg);
  }
  if (o.scheme == "replication") {
    return std::make_unique<SelectiveReplicationScheme>(
        SelectiveReplicationConfig{0.10, o.replicas});
  }
  if (o.scheme == "chunk") {
    return std::make_unique<FixedChunkingScheme>(FixedChunkingConfig{megabytes(o.chunk_mb)});
  }
  if (o.scheme == "simple") return std::make_unique<SimplePartitionScheme>(o.simple_k);
  if (o.scheme == "stock") return std::make_unique<StockScheme>();
  if (o.scheme == "hash") return std::make_unique<HashPlacementScheme>();
  usage_error("unknown scheme '" + o.scheme + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.rpc) return run_rpc(o);

  const auto catalog = o.catalog_file.empty()
                           ? make_uniform_catalog(o.files, megabytes(o.size_mb), o.zipf, o.rate)
                           : load_catalog_csv_file(o.catalog_file);
  std::vector<Bandwidth> bandwidth(o.servers, gbps(o.bandwidth_gbps));
  const auto slow = static_cast<std::size_t>(o.hetero * static_cast<double>(o.servers));
  for (std::size_t s = 0; s < slow; ++s) {
    bandwidth[o.servers - 1 - s] = gbps(o.bandwidth_gbps / 2.0);
  }

  auto scheme = make_scheme(o);
  Rng rng(o.seed);
  scheme->place(catalog, bandwidth, rng);

  SimConfig cfg;
  cfg.n_servers = o.servers;
  cfg.bandwidth = bandwidth;
  cfg.goodput = GoodputModel::calibrated(gbps(o.bandwidth_gbps));
  if (o.stragglers > 0.0) cfg.stragglers = StragglerModel::bing(o.stragglers);
  cfg.seed = o.seed + 1;
  Simulation sim(cfg);
  Rng arrival_rng(o.seed + 2);
  const auto arrivals = o.arrivals_file.empty()
                            ? generate_poisson_arrivals(catalog, o.requests, arrival_rng)
                            : load_arrivals_csv_file(o.arrivals_file);
  const auto r = sim.run(
      arrivals, [&scheme](FileId f, Rng& rr) { return scheme->plan_read(f, rr); });

  Table t({"scheme", "mean_s", "p50_s", "p95_s", "p99_s", "cv", "imbalance_eta",
           "memory_overhead_pct"});
  t.add_row({scheme->name(), r.mean_latency(), r.latencies.percentile(0.50), r.tail_latency(),
             r.latencies.percentile(0.99), r.cv(), r.imbalance(),
             scheme->memory_overhead(catalog) * 100.0});
  if (o.csv) {
    t.print_csv(std::cout);
  } else {
    std::cout << "Workload: " << catalog.size() << " files ("
              << static_cast<double>(catalog.total_bytes()) / static_cast<double>(kGB)
              << " GB), " << catalog.total_rate() << " req/s over " << o.servers << " servers @ "
              << o.bandwidth_gbps << " Gbps";
    if (slow > 0) std::cout << " (" << slow << " at half speed)";
    if (o.stragglers > 0) std::cout << ", stragglers p=" << o.stragglers;
    std::cout << ", " << arrivals.size() << " requests\n\n";
    t.print(std::cout);
  }
  return 0;
}
