// spcache_serverd — one cache worker as a standalone process.
//
// Binds a TcpTransport, hosts a CacheWorkerService (block put/get/erase,
// staged-assembly ops) on the given node id, and serves until
// SIGINT/SIGTERM or --max-seconds elapses. The first stdout line is
//
//   spcache_serverd node <id> listening on <host>:<port>
//
// so scripts that pass --port 0 (kernel-assigned) can parse the real port.
//
//   spcache_serverd --node N [--host H] [--port P] [--bandwidth-gbps B]
//                   [--max-seconds S] [--legacy-write-path]
//                   [--chaos-seed S] [--chaos-partial P] [--chaos-reset P]
//
//   --node N            bus node id (workers are 1..N)   [1]
//   --host H            bind address                     [127.0.0.1]
//   --port P            listen port, 0 = ephemeral       [0]
//   --bandwidth-gbps B  modelled link speed              [1.0]
//   --max-seconds S     auto-exit after S seconds, 0 = run forever  [0]
//   --legacy-write-path pre-batching write path (copy per send, one frame
//                       per syscall) — the bench baseline arm
//   --chaos-seed S      arm seeded socket chaos on this server's transport [1]
//   --chaos-partial P   per-flush partial-write probability    [0]
//   --chaos-reset P     per-flush connection-reset probability [0]
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "rpc/cache_service.h"
#include "rpc/tcp_transport.h"

using namespace spcache;
using namespace spcache::rpc;

namespace {

// Signal handlers may only touch lock-free sig_atomic_t state; teardown
// happens on the main thread once the flag is observed.
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupted syscalls return EINTR and
                    // their call sites retry, so shutdown stays prompt
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  struct sigaction ign = {};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  sigaction(SIGPIPE, &ign, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  NodeId node = kFirstWorkerNode;
  double bandwidth_gbps = 1.0;
  long max_seconds = 0;
  bool legacy_write_path = false;
  std::uint64_t chaos_seed = 1;
  double chaos_partial = 0.0;
  double chaos_reset = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&] {
      if (i + 1 >= argc) {
        std::cerr << "spcache_serverd: missing value for " << flag << "\n";
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--host") {
      host = value();
    } else if (flag == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(value().c_str()));
    } else if (flag == "--node") {
      node = static_cast<NodeId>(std::atoi(value().c_str()));
    } else if (flag == "--bandwidth-gbps") {
      bandwidth_gbps = std::atof(value().c_str());
    } else if (flag == "--max-seconds") {
      max_seconds = std::atol(value().c_str());
    } else if (flag == "--legacy-write-path") {
      legacy_write_path = true;
    } else if (flag == "--chaos-seed") {
      chaos_seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--chaos-partial") {
      chaos_partial = std::atof(value().c_str());
    } else if (flag == "--chaos-reset") {
      chaos_reset = std::atof(value().c_str());
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "spcache_serverd --node N [--host H] [--port P] [--bandwidth-gbps B] "
                   "[--max-seconds S] [--legacy-write-path] [--chaos-seed S] "
                   "[--chaos-partial P] [--chaos-reset P]\n";
      return 0;
    } else {
      std::cerr << "spcache_serverd: unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (node < kFirstWorkerNode) {
    std::cerr << "spcache_serverd: --node must be >= " << kFirstWorkerNode << "\n";
    return 2;
  }

  install_signal_handlers();

  TcpTransportConfig config;
  config.batch_writes = !legacy_write_path;
  TcpTransport transport(config);
  // Seeded socket chaos (armed when any probability is nonzero): the fault
  // schedule is a pure function of the seed, so a failing run replays from
  // the command line alone.
  const bool chaos = chaos_partial > 0.0 || chaos_reset > 0.0;
  fault::FaultConfig chaos_cfg;
  chaos_cfg.sock_partial_write_p = chaos_partial;
  chaos_cfg.sock_reset_p = chaos_reset;
  fault::FaultInjector injector(chaos_seed, chaos_cfg);
  if (chaos) transport.set_fault_injector(&injector);
  const std::uint16_t bound = transport.listen(host, port);
  Bus bus(transport);
  obs::MetricsRegistry registry;
  bus.attach_observability(&registry);
  // server_id is the zero-based cache-server index behind this node.
  const auto server_id = static_cast<std::uint32_t>(node - kFirstWorkerNode);
  CacheWorkerService worker(bus, node, server_id, gbps(bandwidth_gbps));

  std::cout << "spcache_serverd node " << node << " listening on " << host << ":" << bound
            << std::endl;

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(max_seconds);
  while (g_stop == 0) {
    if (max_seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const auto c = transport.counters();
  std::cout << "spcache_serverd node " << node
            << " exiting: blocks_stored=" << worker.store().blocks_stored()
            << " transport.connects=" << c.connects
            << " transport.framing_errors=" << c.framing_errors
            << " transport.bytes_rx=" << c.bytes_rx << " transport.bytes_tx=" << c.bytes_tx
            << " transport.writev_calls=" << c.writev_calls
            << " transport.frames_sent=" << c.frames_sent
            << " transport.frames_per_writev=" << c.frames_per_writev;
  if (chaos) {
    const auto f = injector.stats();
    std::cout << " chaos.sock_partial_writes=" << f.sock_partial_writes
              << " chaos.sock_resets=" << f.sock_resets;
  }
  std::cout << std::endl;
  return c.framing_errors == 0 ? 0 : 1;
}
