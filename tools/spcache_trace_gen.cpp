// spcache_trace_gen — materialize the library's workload generators as CSV
// files, for inspection, external tooling, or replay via
// `spcache_cli --catalog ... --arrivals ...`.
//
//   spcache_trace_gen --out-catalog cat.csv --out-arrivals arr.csv \
//                     [--files 500] [--size-mb 100] [--zipf 1.05] [--rate 18]
//                     [--requests 20000] [--yahoo] [--bursty] [--seed 1]
//
// --yahoo  : Yahoo!-like size distribution (hot files 15-30x larger)
// --bursty : MMPP arrivals (bursty) instead of Poisson
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "workload/arrivals.h"
#include "workload/trace_io.h"

using namespace spcache;

namespace {

struct Options {
  std::string out_catalog;
  std::string out_arrivals;
  std::size_t files = 500;
  double size_mb = 100.0;
  double zipf = 1.05;
  double rate = 18.0;
  std::size_t requests = 20000;
  bool yahoo = false;
  bool bursty = false;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "spcache_trace_gen: " << message
            << "\nSee the header of tools/spcache_trace_gen.cpp.\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--out-catalog") {
      o.out_catalog = value();
    } else if (flag == "--out-arrivals") {
      o.out_arrivals = value();
    } else if (flag == "--files") {
      o.files = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (flag == "--size-mb") {
      o.size_mb = std::atof(value().c_str());
    } else if (flag == "--zipf") {
      o.zipf = std::atof(value().c_str());
    } else if (flag == "--rate") {
      o.rate = std::atof(value().c_str());
    } else if (flag == "--requests") {
      o.requests = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (flag == "--yahoo") {
      o.yahoo = true;
    } else if (flag == "--bursty") {
      o.bursty = true;
    } else if (flag == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "See the header comment of tools/spcache_trace_gen.cpp.\n";
      std::exit(0);
    } else {
      usage_error("unknown flag " + flag);
    }
  }
  if (o.out_catalog.empty() && o.out_arrivals.empty()) {
    usage_error("nothing to do: pass --out-catalog and/or --out-arrivals");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  Rng rng(o.seed);

  const Catalog catalog =
      o.yahoo ? make_yahoo_catalog(o.files, o.zipf, o.rate, YahooSizeModel{}, rng)
              : make_uniform_catalog(o.files, megabytes(o.size_mb), o.zipf, o.rate);

  if (!o.out_catalog.empty()) {
    save_catalog_csv_file(catalog, o.out_catalog);
    std::cout << "wrote catalog: " << o.out_catalog << " (" << catalog.size() << " files, "
              << static_cast<double>(catalog.total_bytes()) / static_cast<double>(kGB)
              << " GB, " << catalog.total_rate() << " req/s)\n";
  }
  if (!o.out_arrivals.empty()) {
    std::vector<Arrival> arrivals;
    if (o.bursty) {
      MmppParams mmpp;
      mmpp.calm_rate = o.rate / 2.0;
      mmpp.burst_rate = o.rate * 4.0;
      arrivals = generate_mmpp_arrivals(catalog, mmpp, o.requests, rng);
    } else {
      arrivals = generate_poisson_arrivals(catalog, o.requests, rng);
    }
    save_arrivals_csv_file(arrivals, o.out_arrivals);
    std::cout << "wrote arrivals: " << o.out_arrivals << " (" << arrivals.size()
              << " requests over " << arrivals.back().time << " s"
              << (o.bursty ? ", bursty" : ", Poisson") << ")\n";
  }
  return 0;
}
