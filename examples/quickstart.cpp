// Quickstart: the SP-Cache public API in one sitting.
//
//  1. Describe the workload as a Catalog (sizes + request rates).
//  2. Let SP-Cache pick the scale factor (Algorithm 1) and place partitions.
//  3. Store and read real bytes through the threaded cluster substrate.
//  4. Estimate latency under load with the discrete-event simulator.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "cluster/client.h"
#include "core/sp_cache.h"
#include "sim/simulation.h"
#include "workload/arrivals.h"

using namespace spcache;

int main() {
  // --- 1. Workload: 100 files of 100 MB, Zipf(1.05) popularity, 8 req/s.
  const auto catalog = make_uniform_catalog(/*n_files=*/100, /*file_size=*/100 * kMB,
                                            /*zipf_exponent=*/1.05, /*total_rate=*/8.0);

  // --- 2. SP-Cache placement over a 30-server cluster.
  const std::size_t n_servers = 30;
  const std::vector<Bandwidth> bandwidth(n_servers, gbps(1.0));
  SpCacheScheme sp;
  Rng rng(7);
  sp.place(catalog, bandwidth, rng);

  std::cout << "Algorithm 1 chose alpha = " << sp.alpha() << " ("
            << sp.search_result()->iterations << " iterations, bound "
            << sp.search_result()->bound << " s)\n";
  std::cout << "Hottest file: " << sp.partition_counts()[0] << " partitions; coldest: "
            << sp.partition_counts()[99] << "\n";
  std::cout << "Memory overhead: " << sp.memory_overhead(catalog) * 100
            << "% (redundancy-free)\n\n";

  // --- 3. Real bytes through the threaded cluster.
  Cluster cluster(n_servers, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  SpClient client(cluster, master, pool);

  std::vector<std::uint8_t> payload(4 * kMB);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i * 31);
  client.write(/*id=*/0, payload, sp.placement(0).servers);
  const auto read_back = client.read(0);
  std::cout << "Cluster roundtrip: wrote 4 MB as " << sp.placement(0).servers.size()
            << " partitions, read back " << read_back.bytes.size() << " bytes, checksum OK, "
            << "modelled network time " << read_back.network_time << " s\n\n";

  // --- 4. Latency under load via the discrete-event simulator.
  SimConfig sim_cfg;
  sim_cfg.n_servers = n_servers;
  sim_cfg.bandwidth = {gbps(1.0)};
  sim_cfg.goodput = GoodputModel::calibrated(gbps(1.0));
  sim_cfg.seed = 11;
  Simulation sim(sim_cfg);
  Rng arrival_rng(13);
  const auto arrivals = generate_poisson_arrivals(catalog, 5000, arrival_rng);
  const auto result =
      sim.run(arrivals, [&sp](FileId f, Rng& r) { return sp.plan_read(f, r); });

  std::cout << "Simulated 5000 reads at 8 req/s: mean " << result.mean_latency() << " s, p95 "
            << result.tail_latency() << " s, imbalance factor " << result.imbalance() << "\n";
  return 0;
}
