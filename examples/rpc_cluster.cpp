// The SP-Cache architecture as communicating services (Fig. 9).
//
// Everything the quickstart does through direct calls happens here over
// the message bus: an SP-Master service owns the metadata, cache-worker
// services own the blocks, and an SP-Client performs Algorithm-1-placed
// writes and parallel reads purely via RPC — every payload crossing a
// serialization boundary, as in the networked Alluxio deployment.
//
// The bus is transport-agnostic. By default the fleet shares one process
// and one InprocTransport; with --transport=tcp the services live behind
// a listening TcpTransport and the client talks to them through its own
// TcpTransport over real loopback sockets — same services, same client,
// different backend under the seam.
#include <cstring>
#include <iostream>

#include "core/sp_cache.h"
#include "rpc/cache_service.h"
#include "rpc/tcp_transport.h"

using namespace spcache;
using namespace spcache::rpc;

namespace {

int run(Bus& service_bus, Bus& client_bus) {
  constexpr std::size_t kWorkers = 12;
  constexpr std::size_t kFiles = 30;
  constexpr Bytes kFileSize = 256 * kKB;

  // Boot the fleet: one master, twelve workers, one client.
  MasterService master(service_bus);
  std::vector<std::unique_ptr<CacheWorkerService>> workers;
  std::vector<NodeId> worker_nodes;
  for (std::size_t s = 0; s < kWorkers; ++s) {
    workers.push_back(std::make_unique<CacheWorkerService>(
        service_bus, kFirstWorkerNode + static_cast<NodeId>(s), static_cast<std::uint32_t>(s),
        gbps(1.0)));
    worker_nodes.push_back(workers.back()->node_id());
  }
  RpcSpClient client(client_bus, kFirstClientNode, kMasterNode, worker_nodes);
  std::cout << "Booted SP-Master + " << kWorkers << " cache workers on the message bus.\n";

  // Algorithm 1 decides the layout; the client executes it over RPC.
  const auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  Rng rng(6);
  sp.place(catalog, std::vector<Bandwidth>(kWorkers, gbps(1.0)), rng);

  std::vector<std::vector<std::uint8_t>> originals(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    originals[f].resize(kFileSize);
    for (std::size_t i = 0; i < kFileSize; ++i) {
      originals[f][i] = static_cast<std::uint8_t>((f + 1) * (i + 7));
    }
    client.write(f, originals[f], sp.placement(f).servers);
  }
  std::cout << "Wrote " << kFiles << " files (" << kFiles * kFileSize / kKB
            << " kB) through PUT + REGISTER messages; hottest file spans "
            << sp.placement(0).servers.size() << " workers.\n";

  // Parallel reads: layouts come from the client's cache (the writes warmed
  // it), coalesced GETs fan out, reassemble, verify — no per-read LOOKUP.
  for (FileId f = 0; f < kFiles; ++f) {
    if (client.read(f) != originals[f]) {
      std::cerr << "corruption on file " << f << "!\n";
      return 1;
    }
  }
  std::cout << "Read all files back bit-exact over RPC.\n";

  // Popularity still reaches the master — cache-served accesses ship as one
  // batched kReportAccess instead of per-read LOOKUPs (the P_i input to
  // re-balancing is unchanged).
  client.flush_access_reports();
  std::cout << "Master access counts after one pass: file 0 -> " << client.access_count(0)
            << ", file " << kFiles - 1 << " -> " << client.access_count(kFiles - 1) << ".\n";

  // Per-worker residency, served by the workers' own bookkeeping.
  std::cout << "Blocks per worker:";
  for (const auto& w : workers) std::cout << ' ' << w->store().blocks_stored();
  std::cout << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string transport = "inproc";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--transport=", 0) == 0) {
      transport = flag.substr(std::strlen("--transport="));
    } else if (flag == "--transport" && i + 1 < argc) {
      transport = argv[++i];
    } else {
      std::cerr << "usage: rpc_cluster [--transport=inproc|tcp]\n";
      return 2;
    }
  }

  if (transport == "inproc") {
    Bus bus;  // owns an InprocTransport; services and client share it
    return run(bus, bus);
  }
  if (transport == "tcp") {
    // Services behind a listening socket, the client on its own transport:
    // every envelope crosses real loopback TCP, framed and reassembled.
    TcpTransport service_tcp;
    const std::uint16_t port = service_tcp.listen("127.0.0.1", 0);
    TcpTransport client_tcp;
    client_tcp.start();
    client_tcp.add_peer(kMasterNode, "127.0.0.1", port);
    for (std::size_t s = 0; s < 12; ++s) {
      client_tcp.add_peer(kFirstWorkerNode + static_cast<NodeId>(s), "127.0.0.1", port);
    }
    std::cout << "TCP transport: services on 127.0.0.1:" << port << ".\n";
    Bus service_bus(service_tcp);
    Bus client_bus(client_tcp);
    const int rc = run(service_bus, client_bus);
    const auto c = client_tcp.counters();
    std::cout << "Client transport: " << c.connects << " connection(s), " << c.bytes_tx
              << " bytes out, " << c.bytes_rx << " bytes in, " << c.framing_errors
              << " framing errors.\n";
    return rc != 0 ? rc : (c.framing_errors == 0 ? 0 : 1);
  }
  std::cerr << "rpc_cluster: unknown transport '" << transport << "' (inproc|tcp)\n";
  return 2;
}
