// The SP-Cache architecture as communicating services (Fig. 9).
//
// Everything the quickstart does through direct calls happens here over
// the message bus: an SP-Master service owns the metadata, cache-worker
// services own the blocks, and an SP-Client performs Algorithm-1-placed
// writes and parallel reads purely via RPC — every payload crossing a
// serialization boundary, as in the networked Alluxio deployment.
#include <iostream>

#include "core/sp_cache.h"
#include "rpc/cache_service.h"

using namespace spcache;
using namespace spcache::rpc;

int main() {
  constexpr std::size_t kWorkers = 12;
  constexpr std::size_t kFiles = 30;
  constexpr Bytes kFileSize = 256 * kKB;

  // Boot the fleet: one master, twelve workers, one client.
  Bus bus;
  MasterService master(bus);
  std::vector<std::unique_ptr<CacheWorkerService>> workers;
  std::vector<NodeId> worker_nodes;
  for (std::size_t s = 0; s < kWorkers; ++s) {
    workers.push_back(std::make_unique<CacheWorkerService>(
        bus, kFirstWorkerNode + static_cast<NodeId>(s), static_cast<std::uint32_t>(s),
        gbps(1.0)));
    worker_nodes.push_back(workers.back()->node_id());
  }
  RpcSpClient client(bus, kFirstClientNode, kMasterNode, worker_nodes);
  std::cout << "Booted SP-Master + " << kWorkers << " cache workers on the message bus.\n";

  // Algorithm 1 decides the layout; the client executes it over RPC.
  const auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  Rng rng(6);
  sp.place(catalog, std::vector<Bandwidth>(kWorkers, gbps(1.0)), rng);

  std::vector<std::vector<std::uint8_t>> originals(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    originals[f].resize(kFileSize);
    for (std::size_t i = 0; i < kFileSize; ++i) {
      originals[f][i] = static_cast<std::uint8_t>((f + 1) * (i + 7));
    }
    client.write(f, originals[f], sp.placement(f).servers);
  }
  std::cout << "Wrote " << kFiles << " files (" << kFiles * kFileSize / kKB
            << " kB) through PUT + REGISTER messages; hottest file spans "
            << sp.placement(0).servers.size() << " workers.\n";

  // Parallel reads: layouts come from the client's cache (the writes warmed
  // it), coalesced GETs fan out, reassemble, verify — no per-read LOOKUP.
  for (FileId f = 0; f < kFiles; ++f) {
    if (client.read(f) != originals[f]) {
      std::cerr << "corruption on file " << f << "!\n";
      return 1;
    }
  }
  std::cout << "Read all files back bit-exact over RPC.\n";

  // Popularity still reaches the master — cache-served accesses ship as one
  // batched kReportAccess instead of per-read LOOKUPs (the P_i input to
  // re-balancing is unchanged).
  client.flush_access_reports();
  std::cout << "Master access counts after one pass: file 0 -> " << client.access_count(0)
            << ", file " << kFiles - 1 << " -> " << client.access_count(kFiles - 1) << ".\n";

  // Per-worker residency, served by the workers' own bookkeeping.
  std::cout << "Blocks per worker:";
  for (const auto& w : workers) std::cout << ' ' << w->store().blocks_stored();
  std::cout << '\n';
  return 0;
}
