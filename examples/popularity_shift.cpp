// Popularity shift: periodic re-balancing with parallel repartition
// (Section 6.2) on the threaded cluster, with real bytes.
//
// Scenario: a nightly report pipeline changes which datasets are hot. The
// SP-Master snapshots access counts, recomputes the scale factor, and
// issues a repartition plan; per-server SP-Repartitioners execute it in
// parallel, each seeded with a local partition. The example verifies every
// file survives bit-exactly and compares the data moved / modelled time
// against the naive sequential rebalance.
#include <iostream>

#include "cluster/client.h"
#include "cluster/repartition_exec.h"
#include "common/table.h"
#include "core/sp_cache.h"

using namespace spcache;

int main() {
  constexpr std::size_t kFiles = 120;
  constexpr Bytes kFileSize = 2 * kMB;  // real bytes kept small; times scale linearly

  Cluster cluster(30, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  Rng rng(42);

  // Day 0: place and load the catalog.
  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);

  SpClient client(cluster, master, pool);
  std::vector<std::vector<std::uint8_t>> originals(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    originals[f].resize(kFileSize);
    for (std::size_t i = 0; i < kFileSize; ++i) {
      originals[f][i] = static_cast<std::uint8_t>(f * 131 + i * 7);
    }
    client.write(f, originals[f], sp.placement(f).servers);
  }
  std::cout << "Loaded " << kFiles << " files (" << kFiles * kFileSize / kMB
            << " MB) across 30 servers; hottest file has " << sp.partition_counts()[0]
            << " partitions.\n";

  // Overnight: the popularity ranking shuffles.
  catalog.shuffle_popularities(rng);
  std::vector<std::vector<std::uint32_t>> old_servers;
  for (const auto& p : sp.placements()) old_servers.push_back(p.servers);
  const auto plan = plan_repartition(catalog, cluster.bandwidths(), sp.partition_counts(),
                                     old_servers, ScaleFactorConfig{}, rng);
  std::cout << "Popularity shift: " << plan.changed_files.size() << " / " << kFiles
            << " files need repartitioning (new alpha = " << plan.alpha << ").\n\n";

  // Execute in parallel and verify integrity.
  const auto par = execute_parallel_repartition(cluster, master, plan, pool);
  for (FileId f = 0; f < kFiles; ++f) {
    if (client.read(f).bytes != originals[f]) {
      std::cerr << "DATA LOSS on file " << f << "!\n";
      return 1;
    }
  }
  std::cout << "Parallel repartition moved " << par.bytes_moved / kMB << " MB in a modelled "
            << par.modelled_time << " s; all " << kFiles << " files verified bit-exact.\n";

  // Compare against the sequential baseline on a fresh, identical cluster.
  Cluster cluster2(30, gbps(1.0));
  Master master2;
  Rng rng2(42);
  auto catalog2 = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp2;
  sp2.place(catalog2, cluster2.bandwidths(), rng2);
  SpClient client2(cluster2, master2, pool);
  for (FileId f = 0; f < kFiles; ++f) client2.write(f, originals[f], sp2.placement(f).servers);
  catalog2.shuffle_popularities(rng2);
  std::vector<std::vector<std::uint32_t>> old2;
  for (const auto& p : sp2.placements()) old2.push_back(p.servers);
  const auto plan2 = plan_repartition(catalog2, cluster2.bandwidths(), sp2.partition_counts(),
                                      old2, ScaleFactorConfig{}, rng2);
  const auto seq = execute_sequential_repartition(cluster2, master2, plan2, gbps(1.0), rng2);

  Table t({"scheme", "files_touched", "MB_moved", "modelled_time_s"});
  t.add_row({std::string("Parallel (SP-Repartitioners)"),
             static_cast<long long>(par.files_touched),
             static_cast<double>(par.bytes_moved) / static_cast<double>(kMB), par.modelled_time});
  t.add_row({std::string("Sequential (via master)"), static_cast<long long>(seq.files_touched),
             static_cast<double>(seq.bytes_moved) / static_cast<double>(kMB), seq.modelled_time});
  t.print(std::cout);
  std::cout << "\nParallel repartition touches only the changed files and spreads the\n"
               "work across servers — the Fig. 16 speedup, on real bytes.\n";
  return 0;
}
