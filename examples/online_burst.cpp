// Online burst absorption: live popularity tracking + distributed
// partition splitting (Section 8 "Short-Term Popularity Variation").
//
// Scenario: mid-epoch, a previously lukewarm dataset goes viral (a
// dashboard everyone suddenly opens). Waiting for the next 12-hour
// re-balancing would leave its server as a hot spot for hours. Instead,
// the EWMA popularity tracker notices the burst within seconds and the
// online adjuster splits the file's existing partitions in place — each
// split ships only half of one cached piece.
#include <iostream>

#include "cluster/client.h"
#include "cluster/online_adjust.h"
#include "common/table.h"
#include "core/sp_cache.h"
#include "workload/popularity_tracker.h"

using namespace spcache;

int main() {
  constexpr std::size_t kFiles = 80;
  constexpr Bytes kFileSize = 2 * kMB;
  constexpr FileId kViral = 25;

  Cluster cluster(30, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  Rng rng(314);

  // Epoch start: steady Zipf workload, SP-Cache layout from Algorithm 1.
  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient client(cluster, master, pool);
  std::vector<std::uint8_t> payload(kFileSize, 0x77);
  for (FileId f = 0; f < kFiles; ++f) client.write(f, payload, sp.placement(f).servers);
  std::cout << "Epoch layout: file " << kViral << " has "
            << master.peek(kViral)->partitions() << " partitions (rank-"
            << kViral + 1 << " lukewarm file).\n";

  // Live traffic: the tracker observes the steady mix for 10 minutes...
  PopularityTracker tracker(/*half_life=*/120.0);
  Seconds now = 0.0;
  while (now < 600.0) {
    now += rng.exponential(1.0 / catalog.total_rate());
    tracker.record(catalog.sample_file(rng), now);
  }
  const double before = tracker.rate(kViral, now);

  // ...then the viral burst: 25 req/s on one file for two minutes.
  while (now < 720.0) {
    now += rng.exponential(1.0 / 25.0);
    tracker.record(kViral, now);
  }
  std::cout << "Burst detected: tracked rate of file " << kViral << " jumped "
            << before << " -> " << tracker.rate(kViral, now) << " req/s.\n\n";

  // React online: Eq. 1 against the live snapshot, split in place.
  std::vector<Bytes> sizes(kFiles, kFileSize);
  const auto live = tracker.snapshot(sizes, now);
  OnlineAdjustConfig cfg;
  cfg.alpha = sp.alpha();  // keep the epoch's scale factor
  cfg.max_ops_per_file = 32;
  const auto plan = plan_online_adjust(live, master, cluster.size(), cfg);
  const auto stats = execute_online_adjust(cluster, master, plan);

  Table t({"metric", "value"});
  t.add_row({std::string("splits executed"), static_cast<long long>(stats.splits)});
  t.add_row({std::string("merges executed"), static_cast<long long>(stats.merges)});
  t.add_row({std::string("data moved (MB)"),
             static_cast<double>(stats.bytes_moved) / static_cast<double>(kMB)});
  t.add_row({std::string("modelled reaction time (s)"), stats.modelled_time});
  t.add_row({std::string("viral file partitions now"),
             static_cast<long long>(master.peek(kViral)->partitions())});
  t.print(std::cout);

  // The data path is untouched semantically: the file still reads back.
  if (client.read(kViral).bytes != payload) {
    std::cerr << "DATA LOSS after online adjustment!\n";
    return 1;
  }
  std::cout << "\nViral file verified bit-exact; its load is now spread across "
            << master.peek(kViral)->partitions()
            << " servers without waiting for the periodic re-balance.\n";
  return 0;
}
