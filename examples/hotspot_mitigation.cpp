// Hot-spot mitigation: the Section 2 motivation, end to end.
//
// A data-analytics cluster caches 50 input files whose popularity follows
// Zipf(1.1) — a handful of hot training/ETL inputs absorb most reads. With
// the stock one-file-one-server layout, the servers holding hot files
// congest and the benefit of in-memory caching evaporates. SP-Cache splits
// exactly those files and spreads their load.
//
// The example sweeps the request rate and prints stock vs SP-Cache side by
// side, reproducing the "diminishing benefits of caching" story and its fix.
#include <iostream>

#include "common/table.h"
#include "core/simple_partition.h"
#include "core/sp_cache.h"
#include "sim/simulation.h"
#include "workload/arrivals.h"

using namespace spcache;

namespace {

SimResult simulate(CachingScheme& scheme, const Catalog& cat, std::uint64_t seed) {
  SimConfig cfg;
  cfg.n_servers = 30;
  cfg.bandwidth = {gbps(0.8)};  // m4.large-like
  cfg.goodput = GoodputModel::calibrated(gbps(0.8));
  cfg.seed = seed;
  Rng place_rng(seed + 1);
  scheme.place(cat, std::vector<Bandwidth>(30, gbps(0.8)), place_rng);
  Rng arrival_rng(seed + 2);
  const auto arrivals = generate_poisson_arrivals(cat, 6000, arrival_rng);
  Simulation sim(cfg);
  return sim.run(arrivals, [&scheme](FileId f, Rng& r) { return scheme.plan_read(f, r); });
}

}  // namespace

int main() {
  std::cout << "Hot-spot mitigation: stock layout vs SP-Cache on a skewed workload\n"
               "(50 x 40 MB files, Zipf 1.1, 30 servers @ 0.8 Gbps)\n\n";

  Table t({"rate_req_s", "stock_mean_s", "stock_cv", "sp_mean_s", "sp_cv", "speedup"});
  for (double rate : {5.0, 7.0, 9.0, 10.0}) {
    const auto cat = make_uniform_catalog(50, 40 * kMB, 1.1, rate);
    StockScheme stock;
    const auto r_stock = simulate(stock, cat, 100);
    SpCacheScheme sp;
    const auto r_sp = simulate(sp, cat, 100);
    t.add_row({rate, r_stock.mean_latency(), r_stock.cv(), r_sp.mean_latency(), r_sp.cv(),
               r_sp.mean_latency() > 0 ? r_stock.mean_latency() / r_sp.mean_latency() : 0.0});
  }
  t.print(std::cout);
  std::cout << "\nAs the rate ramps up, the stock layout's hot spots dominate (CV > 1)\n"
               "while SP-Cache keeps latency flat by splitting exactly the hot files.\n";
  return 0;
}
