// Failure recovery: losing a cache server without losing data
// (Section 8 "Fault Tolerance").
//
// SP-Cache keeps no cache-level redundancy, so a crashed server takes its
// partitions with it. As in Alluxio, every file is checkpointed to stable
// storage (HDFS/S3-style, itself replicated); the recovery manager restores
// the lost partitions from there and re-spreads them over the surviving
// servers — trading a slower one-off recovery for a permanently smaller
// memory footprint.
#include <iostream>

#include "cluster/client.h"
#include "cluster/stable_store.h"
#include "core/sp_cache.h"

using namespace spcache;

int main() {
  constexpr std::size_t kFiles = 60;
  constexpr Bytes kFileSize = 4 * kMB;

  Cluster cluster(30, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  StableStore stable(mbps(400));  // cross-rack restore bandwidth
  Rng rng(99);

  // Load the cluster and checkpoint everything to stable storage.
  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient client(cluster, master, pool);
  std::vector<std::vector<std::uint8_t>> originals(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    originals[f].resize(kFileSize);
    for (std::size_t i = 0; i < kFileSize; ++i) {
      originals[f][i] = static_cast<std::uint8_t>(f ^ (i * 17));
    }
    client.write(f, originals[f], sp.placement(f).servers);
    stable.checkpoint(f, originals[f]);
  }
  std::cout << "Cached " << kFiles << " files (" << kFiles * kFileSize / kMB
            << " MB, redundancy-free) and checkpointed them to stable storage.\n";

  // Disaster: server 3 crashes and loses every block it held.
  const std::uint32_t failed = 3;
  const auto lost_blocks = cluster.server(failed).blocks_stored();
  cluster.server(failed).clear();
  std::cout << "Server " << failed << " crashed, losing " << lost_blocks << " partitions.\n";

  std::size_t unreadable = 0;
  for (FileId f = 0; f < kFiles; ++f) {
    try {
      client.read(f);
    } catch (const std::exception&) {
      ++unreadable;
    }
  }
  std::cout << unreadable << " files are unreadable until recovery.\n\n";

  // Recover: re-place the lost slots on surviving servers and restore the
  // bytes from stable storage.
  RecoveryManager recovery(cluster, master, stable);
  const auto stats = recovery.repair_after_server_loss(failed);
  std::cout << "Recovery restored " << stats.pieces_recovered << " partitions ("
            << stats.bytes_restored / kMB << " MB from stable storage) in a modelled "
            << stats.modelled_time << " s.\n";

  for (FileId f = 0; f < kFiles; ++f) {
    if (client.read(f).bytes != originals[f]) {
      std::cerr << "DATA LOSS on file " << f << "!\n";
      return 1;
    }
  }
  std::cout << "All " << kFiles << " files verified bit-exact after recovery.\n";
  return 0;
}
