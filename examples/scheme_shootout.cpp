// Scheme shootout: pick a caching scheme for your cluster.
//
// Compares SP-Cache against EC-Cache, selective replication, and fixed-size
// chunking on the same skewed workload, reporting the three axes a
// practitioner cares about: latency (mean + tail), load balance, and memory
// footprint. Reproduces the paper's headline trade-off table in one run.
//
// Usage: scheme_shootout [request_rate] (default 18)
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/table.h"
#include "core/ec_cache.h"
#include "core/fixed_chunking.h"
#include "core/selective_replication.h"
#include "core/sp_cache.h"
#include "sim/simulation.h"
#include "workload/arrivals.h"

using namespace spcache;

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 18.0;
  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.05, rate);
  const std::vector<Bandwidth> bw(30, gbps(1.0));

  std::cout << "Scheme shootout: 500 x 100 MB files, Zipf 1.05, rate " << rate
            << " req/s, 30 servers @ 1 Gbps, stragglers p=0.05\n\n";

  std::vector<std::unique_ptr<CachingScheme>> schemes;
  schemes.push_back(std::make_unique<SpCacheScheme>());
  schemes.push_back(std::make_unique<EcCacheScheme>());
  schemes.push_back(std::make_unique<SelectiveReplicationScheme>());
  schemes.push_back(std::make_unique<FixedChunkingScheme>(FixedChunkingConfig{8 * kMB}));

  Table t({"scheme", "mean_s", "p95_s", "imbalance_eta", "memory_overhead_pct"});
  for (auto& scheme : schemes) {
    Rng rng(2718);
    scheme->place(cat, bw, rng);
    SimConfig cfg;
    cfg.n_servers = 30;
    cfg.bandwidth = {gbps(1.0)};
    cfg.goodput = GoodputModel::calibrated(gbps(1.0));
    cfg.stragglers = StragglerModel::bing(0.05);
    cfg.seed = 2719;
    Simulation sim(cfg);
    Rng arrival_rng(2720);
    const auto arrivals = generate_poisson_arrivals(cat, 8000, arrival_rng);
    const auto r = sim.run(
        arrivals, [&scheme](FileId f, Rng& rr) { return scheme->plan_read(f, rr); });
    t.add_row({scheme->name(), r.mean_latency(), r.tail_latency(), r.imbalance(),
               scheme->memory_overhead(cat) * 100.0});
  }
  t.print(std::cout);
  std::cout << "\nSP-Cache: lowest latency and imbalance at zero memory overhead —\n"
               "load-balanced, redundancy-free, and decode-free.\n";
  return 0;
}
